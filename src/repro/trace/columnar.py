"""Columnar decode of block-indexed binary traces.

:mod:`repro.trace.binio` decodes a trace one record at a time: one
``unpack_from`` plus one slotted-dataclass construction per record (and per
operand).  PR 4's header scan showed the fixed header alone costs a fraction
of that walk — the per-record *object layer* is the dominant cost of
analysis.  This module removes it: a :class:`TraceColumnarReader` turns
whole runs of record blocks into :class:`ColumnarBlock` objects — parallel
arrays (columns) for the fields the analysis engine actually consults per
record — in a small number of bulk sweeps, with full
:class:`~repro.trace.records.TraceRecord` materialization deferred to the
rare records that need it (``Alloca`` / ``Call`` / ``Ret``, plus anything a
pass explicitly requests via :meth:`ColumnarBlock.record`).

Decoded columns (everything else stays lazy)::

    per record   dyn_id, opcode, line, function_id, callee_id,
                 op_start (slot prefix sum, result slot included),
                 has_result, rec_off (byte offset, for materialization)
    per operand  op_flags, op_name_id, op_address (None when absent)

Two scan implementations produce byte-identical columns:

* a **numpy lockstep scan** (used when numpy is importable): the block
  index gives the byte offset of every ``INDEX_STRIDE``-th record, so a
  chunk of B full index blocks is decoded *simultaneously* — one vector
  step per record slot k advances all B lanes at once, and the operand
  walk advances each lane by a flags-byte size lookup exactly like
  ``binio._skip_operands``.  Big-integer operands (variable length) abort
  the chunk to the fallback;
* a **pure-Python scan** used for partial blocks, arbitrary record ranges,
  big-integer chunks, and when numpy is unavailable.

The reader accepts a ``path`` or an already-open ``buffer``/``mmap`` of the
whole file (plus an optional pre-read layout), so warm re-reads within one
process re-use the open mapping and the parsed footer.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional

from repro.trace.binio import (
    _OPERAND_FIXED,
    _OPERAND_TABLE,
    _RECORD_FIXED,
    _U32,
    _U64,
    _VALUE_BIG,
    BinaryTraceError,
    BinaryTraceLayout,
    _decode_record,
    layout_from_buffer,
    read_layout,
)
from repro.trace.records import TraceRecord

try:  # numpy is optional: the pure-Python scan covers its absence
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _scan_range fallback
    _np = None

#: Records handed to one :class:`ColumnarBlock` by default (a multiple of
#: the index stride keeps whole index blocks in lockstep).
DEFAULT_CHUNK_RECORDS = 65536

#: flags byte -> total encoded operand size (0 marks the variable-length
#: big-integer layout, which the lockstep scan cannot size vectorially).
_SIZE_BY_FLAGS = tuple(entry[1] if entry is not None else 0
                       for entry in _OPERAND_TABLE)

_HDR_SIZE = _RECORD_FIXED.size  # 42
_OP_FIXED_SIZE = _OPERAND_FIXED.size  # 13

if _np is not None:
    # int32 everywhere the values are byte offsets: offsets into one chunk
    # buffer always fit, and halving the index-array width measurably cuts
    # the gather traffic of the lockstep scan (int64 variants cover the
    # implausible >2 GiB-buffer case).
    _NP_SIZE_LUT = _np.array(_SIZE_BY_FLAGS, dtype=_np.int64)
    _NP_SIZE_LUT32 = _np.array(_SIZE_BY_FLAGS, dtype=_np.int32)
    _NP_HDR_RANGE = _np.arange(_HDR_SIZE, dtype=_np.int32)
    _NP_OP_NAME_RANGE = _np.arange(9, 13, dtype=_np.int32)
    _NP_ADDR_RANGE = _np.arange(8, dtype=_np.int32)
    #: the fixed record header reinterpreted in place — one bulk gather of
    #: the 42 header bytes per record, then per-field strided views instead
    #: of one copy per field.
    _NP_HDR_DTYPE = _np.dtype({
        "names": ["dyn_id", "opcode", "line", "function_id", "callee_id",
                  "has_result"],
        "formats": ["<i8", "<i4", "<i4", "<u4", "<u4", "u1"],
        "offsets": [0, 8, 12, 28, 36, 41],
        "itemsize": _HDR_SIZE,
    })


class _BigIntInChunk(Exception):
    """Internal: a lockstep chunk met a big-integer operand; fall back."""


class ColumnarBlock:
    """One decoded run of records as parallel columns.

    Columns are plain Python lists (cheapest to consume from Python loops);
    ``np_opcode`` / ``np_line`` / ``np_function_id`` mirror three of them as
    numpy arrays when numpy is available, for vectorized masks (loop-row
    detection, prefilter skip masks).  Operand slots of record ``row`` are
    ``op_start[row]`` to ``op_start[row + 1]`` (the *result* operand, when
    ``has_result[row]``, is the last slot); the record's operand count
    excluding the result is ``op_start[row+1] - op_start[row] -
    has_result[row]``.
    """

    __slots__ = ("base_index", "count", "strings", "id_of", "buf",
                 "opcode", "line", "function_id",
                 "op_start", "has_result",
                 "op_flags", "op_name_id", "op_address",
                 "np_opcode", "np_line", "np_function_id",
                 "np_op_start", "np_has_result", "np_op_name_id",
                 "_dyn_id", "_callee_id", "_rec_off",
                 "_np_dyn_id", "_np_callee_id", "_np_rec_off",
                 "_records", "_scope_rows")

    def __init__(self, base_index: int, strings: List[str],
                 id_of: Dict[str, int], buf) -> None:
        self.base_index = base_index
        self.strings = strings
        self.id_of = id_of
        self.buf = buf
        self.count = 0
        self._dyn_id: List[int] = []
        self.opcode: List[int] = []
        self.line: List[int] = []
        self.function_id: List[int] = []
        self._callee_id: List[int] = []
        self.op_start: List[int] = [0]
        self.has_result: List[int] = []
        self._rec_off: List[int] = []
        self.op_flags: List[int] = []
        self.op_name_id: List[int] = []
        self.op_address: List[Optional[int]] = []
        self.np_opcode = None
        self.np_line = None
        self.np_function_id = None
        # Mirrors the lockstep scan gets for free (``None`` after a
        # pure-Python scan): passes use them to pre-gather whole segments
        # of per-row header fields in a few vector ops.
        self.np_op_start = None
        self.np_has_result = None
        self.np_op_name_id = None
        # Columns the walk consults for only a handful of rows (event dyn
        # ids, scope-record materialization) park as numpy arrays until
        # someone asks for the Python list — the ~83k-element ``tolist``
        # per column is the single biggest avoidable decode cost.
        self._np_dyn_id = None
        self._np_callee_id = None
        self._np_rec_off = None
        self._records: Dict[int, TraceRecord] = {}
        self._scope_rows: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # Lazily materialized columns
    # ------------------------------------------------------------------ #
    @property
    def dyn_id(self) -> List[int]:
        col = self._dyn_id
        if self._np_dyn_id is not None:
            col.extend(self._np_dyn_id.tolist())
            self._np_dyn_id = None
        return col

    @property
    def callee_id(self) -> List[int]:
        col = self._callee_id
        if self._np_callee_id is not None:
            col.extend(self._np_callee_id.tolist())
            self._np_callee_id = None
        return col

    @property
    def rec_off(self) -> List[int]:
        col = self._rec_off
        if self._np_rec_off is not None:
            col.extend(self._np_rec_off.tolist())
            self._np_rec_off = None
        return col

    def dyn_id_col(self):
        """Row-indexable dyn_id column without forcing the Python list.

        May be a numpy array — wrap single elements in ``int()``.
        """
        pending = self._np_dyn_id
        return pending if pending is not None else self.dyn_id

    def _store_lazy(self, dyn, callee, rec) -> None:
        """Park freshly scanned arrays for the three lazy columns — or, if
        the block already holds rows (a prior scan appended), flush and
        extend eagerly so row numbering stays aligned."""
        if self._dyn_id or self._np_dyn_id is not None:
            self.dyn_id.extend(dyn.tolist())
            self.callee_id.extend(callee.tolist())
            self.rec_off.extend(rec.tolist())
        else:
            self._np_dyn_id = dyn
            self._np_callee_id = callee
            self._np_rec_off = rec

    # ------------------------------------------------------------------ #
    def record(self, row: int) -> TraceRecord:
        """Materialize (and cache) the full record at ``row``."""
        record = self._records.get(row)
        if record is None:
            rec_off = self._np_rec_off
            offset = (int(rec_off[row]) if rec_off is not None
                      else self._rec_off[row])
            record, _ = _decode_record(self.buf, offset, self.strings)
            self._records[row] = record
        return record

    def records(self) -> Iterator[TraceRecord]:
        """Materialize every record, in row order (testing aid)."""
        for row in range(self.count):
            yield self.record(row)

    def rows_matching(self, *opcodes: int) -> List[int]:
        """Rows whose opcode is one of ``opcodes`` (vectorized when able)."""
        if self.np_opcode is not None:
            mask = self.np_opcode == opcodes[0]
            for op in opcodes[1:]:
                mask |= self.np_opcode == op
            return _np.flatnonzero(mask).tolist()
        wanted = set(opcodes)
        return [row for row, op in enumerate(self.opcode) if op in wanted]

    def span_rows_matching(self, start: int, stop: int, *opcodes: int,
                           function_id: Optional[int] = None,
                           line: Optional[int] = None) -> List[int]:
        """Ascending rows in ``[start, stop)`` whose opcode is one of
        ``opcodes`` — narrowed to one function id and/or source line when
        given.  The segment-scoped sibling of :meth:`rows_matching`: the
        passes use it to sweep only their interesting rows instead of
        testing every record of a segment."""
        if self.np_opcode is not None:
            ops = self.np_opcode[start:stop]
            mask = ops == opcodes[0]
            for op in opcodes[1:]:
                mask |= ops == op
            if function_id is not None:
                mask &= self.np_function_id[start:stop] == function_id
            if line is not None:
                mask &= self.np_line[start:stop] == line
            rows = _np.flatnonzero(mask)
            if start:
                rows += start
            return rows.tolist()
        wanted = set(opcodes)
        opcode = self.opcode
        fids = self.function_id
        lines = self.line
        return [row for row in range(start, stop)
                if opcode[row] in wanted
                and (function_id is None or fids[row] == function_id)
                and (line is None or lines[row] == line)]

    def loop_rows(self, function_id: int, start_line: int,
                  end_line: int) -> List[int]:
        """Rows matching the main-loop spec (function + line range)."""
        if self.np_function_id is not None:
            mask = ((self.np_function_id == function_id)
                    & (self.np_line >= start_line)
                    & (self.np_line <= end_line))
            return _np.flatnonzero(mask).tolist()
        return [row for row in range(self.count)
                if self.function_id[row] == function_id
                and start_line <= self.line[row] <= end_line]

    def _finish(self) -> "ColumnarBlock":
        """Seal the block: derive count and the numpy mirror columns."""
        self.count = len(self.opcode)
        if _np is not None and (self.np_opcode is None
                                or len(self.np_opcode) != self.count):
            # The lockstep scan pre-seeds the mirrors straight from its
            # header views; rebuild from the lists only when it didn't
            # (pure-Python scan, or a mixed-scan block).  The operand
            # mirrors have no cheap rebuild — drop any partial ones and
            # let consumers take their scalar path.
            self.np_opcode = _np.asarray(self.opcode, dtype=_np.int64)
            self.np_line = _np.asarray(self.line, dtype=_np.int64)
            self.np_function_id = _np.asarray(self.function_id,
                                              dtype=_np.int64)
            self.np_op_start = None
            self.np_has_result = None
            self.np_op_name_id = None
        return self


# --------------------------------------------------------------------------- #
# Pure-Python scan (fallback + partial blocks + big-int chunks)
# --------------------------------------------------------------------------- #
def _scan_python(block: ColumnarBlock, buf, position: int, count: int) -> int:
    """Append ``count`` records starting at byte ``position`` to ``block``.

    Produces columns identical to the lockstep scan — including for
    big-integer operands — and returns the byte position one past the last
    record.  Raises :class:`BinaryTraceError` on a truncated block (the
    caller hands it a complete byte span).
    """
    hdr = _RECORD_FIXED.unpack_from
    op_hdr = _OPERAND_FIXED.unpack_from
    sizes = _SIZE_BY_FLAGS
    dyn_ids = block.dyn_id
    opcodes = block.opcode
    lines = block.line
    function_ids = block.function_id
    callee_ids = block.callee_id
    op_starts = block.op_start
    has_results = block.has_result
    rec_offs = block.rec_off
    op_flags = block.op_flags
    op_name_ids = block.op_name_id
    op_addresses = block.op_address
    slot_total = op_starts[-1]
    try:
        for _ in range(count):
            (dyn_id, opcode, line, _column, _bb_label, _opcode_name_id,
             function_id, _bb_id_id, callee_id, operand_count,
             has_result) = hdr(buf, position)
            rec_offs.append(position)
            dyn_ids.append(dyn_id)
            opcodes.append(opcode)
            lines.append(line)
            function_ids.append(function_id)
            callee_ids.append(callee_id)
            has_results.append(has_result)
            position += _HDR_SIZE
            for _ in range(operand_count + has_result):
                flags, _index_id, _bits, name_id = op_hdr(buf, position)
                op_flags.append(flags)
                op_name_ids.append(name_id)
                size = sizes[flags]
                if size == 0:
                    if (flags >> 4) != _VALUE_BIG:
                        raise BinaryTraceError(
                            f"unknown operand value tag {flags >> 4}")
                    (digit_count,) = _U32.unpack_from(
                        buf, position + _OP_FIXED_SIZE)
                    size = _OP_FIXED_SIZE + 4 + digit_count
                    if flags & 2:
                        size += 8
                if flags & 2:
                    (address,) = _U64.unpack_from(buf, position + size - 8)
                    op_addresses.append(address)
                else:
                    op_addresses.append(None)
                position += size
            if position > len(buf):
                raise struct.error("record block overruns the buffer")
            slot_total += operand_count + has_result
            op_starts.append(slot_total)
    except (IndexError, struct.error):
        raise BinaryTraceError(
            "truncated record block in columnar scan") from None
    return position


# --------------------------------------------------------------------------- #
# numpy lockstep scan
# --------------------------------------------------------------------------- #
def _scan_numpy(block: ColumnarBlock, buf, block_starts: List[int],
                expected_ends: List[int], stride: int) -> None:
    """Decode ``len(block_starts)`` *full* index blocks in lockstep.

    ``block_starts`` are byte offsets (relative to ``buf``) of consecutive
    index blocks, each containing exactly ``stride`` records, and
    ``expected_ends`` the matching one-past-the-end offsets from the block
    index; ``buf`` must extend at least one byte past the last block
    (finished lanes park their cursor on the next block's first byte).
    Appends columns in stream
    order.  Raises :class:`_BigIntInChunk` when a big-integer operand is
    met — the caller re-scans the span with :func:`_scan_python`.

    Big-integer operands are *not* tested for in the hot loop: their
    size-LUT entry is 0, so a lane that meets one stops advancing and its
    final cursor misses the next block boundary the footer index promises —
    one vector comparison after the walk catches that (and any other
    corruption) and triggers the fallback.
    """
    arr = _np.frombuffer(buf, dtype=_np.uint8)
    lanes = len(block_starts)
    if len(buf) <= 0x7FFFFF00:  # offsets (and offset sums) fit in int32
        off_dtype = _np.int32
        size_lut = _NP_SIZE_LUT32
    else:  # pragma: no cover - >2 GiB chunk buffers
        off_dtype = _np.int64
        size_lut = _NP_SIZE_LUT
    cur = _np.asarray(block_starts, dtype=off_dtype)
    rec_off = _np.empty((stride, lanes), off_dtype)
    slot_counts = _np.empty((stride, lanes), _np.int64)
    # Operand offsets write straight into their stream-assembly cube slot
    # (grown in the rare record with more slots than the initial guess).
    cube = _np.empty((stride, 8, lanes), off_dtype)
    max_slots = 0
    for k in range(stride):
        rec_off[k] = cur
        slots = arr[cur + 40].astype(_np.int64)
        slots += arr[cur + 41]
        slot_counts[k] = slots
        op_cur = cur + _HDR_SIZE
        limit = int(slots.max()) if lanes else 0
        if limit > cube.shape[1]:
            grown = _np.empty((stride, limit, lanes), off_dtype)
            grown[:, :cube.shape[1], :] = cube
            cube = grown
        if limit > max_slots:
            max_slots = limit
        row_cube = cube[k]
        for j in range(limit):
            row_cube[j] = op_cur
            sizes = size_lut[arr[op_cur]]
            sizes *= slots > j  # freeze finished (and big-int) lanes
            op_cur += sizes
        cur = op_cur
    if not bool(_np.array_equal(cur, _np.asarray(expected_ends,
                                                 dtype=_np.int64))):
        raise _BigIntInChunk

    # Assemble stream order: record (lane b, slot k) sorts by (b, k).
    rec_off_stream = rec_off.T.ravel()
    slots_stream = slot_counts.T.ravel()
    total_slots = int(slots_stream.sum())
    if max_slots:
        valid = (_np.arange(max_slots)[None, :, None]
                 < slot_counts[:, None, :])
        flat_op_off = (cube[:, :max_slots, :].transpose(2, 0, 1)
                       [valid.transpose(2, 0, 1)])
    else:
        flat_op_off = _np.empty(0, off_dtype)

    # Bulk header gather: one fancy index, then per-field struct views.
    fresh = not block.opcode
    hdr = arr[rec_off_stream[:, None] + _NP_HDR_RANGE]
    recs = hdr.view(_NP_HDR_DTYPE).ravel()
    block.opcode.extend(recs["opcode"].tolist())
    block.line.extend(recs["line"].tolist())
    block.function_id.extend(recs["function_id"].tolist())
    block.has_result.extend(recs["has_result"].tolist())
    block._store_lazy(recs["dyn_id"], recs["callee_id"], rec_off_stream)
    base_slot = block.op_start[-1]
    op_start_np = _np.empty(len(rec_off_stream) + 1, _np.int64)
    op_start_np[0] = base_slot
    _np.cumsum(slots_stream, out=op_start_np[1:])
    if base_slot:
        op_start_np[1:] += base_slot
    block.op_start.extend(op_start_np[1:].tolist())
    if fresh:
        # Pre-seed the numpy mirrors from the header views — cheaper than
        # ``_finish`` rebuilding them from the freshly made lists.
        block.np_opcode = recs["opcode"].astype(_np.int64)
        block.np_line = recs["line"].astype(_np.int64)
        block.np_function_id = recs["function_id"].astype(_np.int64)
        block.np_op_start = op_start_np
        block.np_has_result = recs["has_result"]

    if total_slots:
        flags_u8 = arr[flat_op_off]
        block.op_flags.extend(flags_u8.tolist())
        op_name_np = (arr[flat_op_off[:, None] + _NP_OP_NAME_RANGE]
                      .view("<u4").ravel())
        block.op_name_id.extend(op_name_np.tolist())
        if fresh:
            block.np_op_name_id = op_name_np
        has_addr = (flags_u8 & 2) != 0
        addresses = _np.full(total_slots, None, dtype=object)
        if bool(has_addr.any()):
            addr_off = flat_op_off[has_addr] + size_lut[flags_u8[has_addr]] - 8
            addr_vals = (arr[addr_off[:, None] + _NP_ADDR_RANGE]
                         .view("<u8").ravel())
            addresses[has_addr] = addr_vals.tolist()
        block.op_address.extend(addresses.tolist())


# --------------------------------------------------------------------------- #
# Reader
# --------------------------------------------------------------------------- #
class TraceColumnarReader:
    """Stream a binary trace as :class:`ColumnarBlock` chunks.

    Exactly one of ``path`` and ``buffer`` is the byte source; ``buffer``
    is an already-open ``bytes`` / ``memoryview`` / ``mmap`` of the *whole*
    file (warm re-reads within one process skip the reopen), and a
    pre-read ``layout`` skips the footer parse.  :meth:`close` releases
    the owned file handle deterministically; the reader is a context
    manager.
    """

    def __init__(self, path: Optional[str] = None,
                 layout: Optional[BinaryTraceLayout] = None,
                 buffer=None) -> None:
        if (path is None) and (buffer is None):
            raise ValueError("pass a path or an already-open buffer")
        self.path = path
        self._buffer = buffer
        if layout is None:
            layout = (layout_from_buffer(buffer, name=path)
                      if buffer is not None else read_layout(path))
        self.layout = layout
        self.strings = layout.strings
        self.id_of: Dict[str, int] = {
            text: index for index, text in enumerate(layout.strings)}
        self._handle = None
        self._closed = False

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the owned file handle (idempotent; an externally
        supplied buffer is left to its owner)."""
        self._closed = True
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceColumnarReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _read_span(self, start: int, length: int) -> bytes:
        """``length`` bytes at absolute offset ``start`` (+1 guard byte
        when available — finished lockstep lanes peek one byte past their
        block)."""
        if self._buffer is not None:
            view = self._buffer
            return bytes(memoryview(view)[start:start + length])
        if self._closed:
            raise ValueError("columnar reader is closed")
        if self._handle is None:
            self._handle = open(self.path, "rb")
        self._handle.seek(start)
        data = self._handle.read(length)
        if len(data) < length:
            raise BinaryTraceError(
                f"truncated binary trace file {self.path!r}")
        return data

    # ------------------------------------------------------------------ #
    def _block_end(self, block_index: int) -> int:
        """Byte offset one past index block ``block_index``."""
        offsets = self.layout.block_offsets
        if block_index + 1 < len(offsets):
            return offsets[block_index + 1]
        return self.layout.records_end

    def _python_span(self, base_index: int, start_record: int,
                     count: int) -> ColumnarBlock:
        """Scan ``count`` records from ``start_record`` the slow way."""
        layout = self.layout
        offset, skip = layout.seek_position(start_record)
        covering = min((start_record + count - 1) // layout.index_stride
                       if layout.index_stride else 0,
                       len(layout.block_offsets) - 1)
        end = self._block_end(covering)
        buf = self._read_span(offset, end - offset)
        block = ColumnarBlock(base_index, self.strings, self.id_of, buf)
        position = 0
        if skip:
            scratch = ColumnarBlock(0, self.strings, self.id_of, buf)
            position = _scan_python(scratch, buf, 0, skip)
        _scan_python(block, buf, position, count)
        return block._finish()

    def iter_blocks(self, start_record: int = 0,
                    end_record: Optional[int] = None,
                    chunk_records: int = DEFAULT_CHUNK_RECORDS,
                    ) -> Iterator[ColumnarBlock]:
        """Yield the records in ``[start_record, end_record)`` as columns.

        Chunk boundaries are aligned to the block index so the interior of
        the range decodes via the lockstep scan; a leading/trailing partial
        index block (and any chunk containing a big-integer operand) falls
        back to the pure-Python scan, with identical columns either way.
        Memory stays bounded by ``chunk_records``.
        """
        layout = self.layout
        total = layout.record_count
        start = max(0, start_record)
        end = total if end_record is None else min(end_record, total)
        if start >= end:
            return
        stride = layout.index_stride or 1
        offsets = layout.block_offsets

        # Leading partial block: records up to the next index boundary.
        first_full = -(-start // stride)  # ceil
        if start % stride or first_full * stride > end:
            head_end = min(first_full * stride, end)
            yield self._python_span(start, start, head_end - start)
            start = head_end
            if start >= end:
                return

        # Full index blocks, decoded lockstep in chunks.
        last_full = min(end, total) // stride
        blocks_per_chunk = max(1, chunk_records // stride)
        block_index = start // stride
        while block_index < last_full:
            chunk_blocks = min(blocks_per_chunk, last_full - block_index)
            chunk_start = offsets[block_index]
            chunk_end = self._block_end(block_index + chunk_blocks - 1)
            guard = 1 if self._spans_past(chunk_end) else 0
            buf = self._read_span(chunk_start, chunk_end - chunk_start + guard)
            base = block_index * stride
            block = ColumnarBlock(base, self.strings, self.id_of, buf)
            starts = [offsets[b] - chunk_start
                      for b in range(block_index, block_index + chunk_blocks)]
            ends = starts[1:] + [chunk_end - chunk_start]
            if _np is None:
                _scan_python(block, buf, 0,
                             chunk_blocks * stride)
            else:
                try:
                    _scan_numpy(block, buf, starts, ends, stride)
                except (_BigIntInChunk, IndexError):
                    block = ColumnarBlock(base, self.strings, self.id_of, buf)
                    _scan_python(block, buf, 0, chunk_blocks * stride)
            yield block._finish()
            block_index += chunk_blocks

        # Trailing partial block.
        tail_start = last_full * stride
        if tail_start < end:
            yield self._python_span(tail_start, tail_start, end - tail_start)

    def _spans_past(self, offset: int) -> bool:
        """True when at least one byte exists past ``offset`` (the footer
        always follows the record region, so this is true for any chunk
        ending at or before ``records_end``)."""
        return offset <= self.layout.records_end
