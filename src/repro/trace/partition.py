"""Parallel, block-boundary-preserving trace-file reading.

This reproduces the paper's pre-processing optimization (Sec. V-A): the
master partitions the input file stream into sub-file-streams *without
breaking individual instruction blocks* and worker threads/processes parse
the sub-streams concurrently.  The paper uses 48 OpenMP threads; here the
worker pool is either a thread pool (default, low overhead) or a
:class:`concurrent.futures.ProcessPoolExecutor` for genuinely parallel
parsing of very large traces.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.trace.records import Trace, TraceRecord
from repro.trace.textio import parse_record_lines, read_preamble

RECORD_PREFIX = "0,"


@dataclass(frozen=True)
class TracePartition:
    """A byte range of the trace file containing only whole instruction blocks."""

    index: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


def _align_to_block_start(handle, offset: int, file_size: int) -> int:
    """Advance ``offset`` to the beginning of the next instruction block.

    Instruction blocks always start with a line whose first field is ``0``
    (the same property the paper relies on for LLVM-Tracer output), so the
    next block boundary is the next line starting with ``0,``.
    """
    if offset <= 0:
        return 0
    if offset >= file_size:
        return file_size
    handle.seek(offset)
    handle.readline()  # skip the (possibly partial) current line
    while True:
        position = handle.tell()
        line = handle.readline()
        if not line:
            return file_size
        if line.startswith(RECORD_PREFIX):
            return position


def partition_offsets(path: str, num_partitions: int) -> List[TracePartition]:
    """Split a trace file into ``num_partitions`` block-aligned byte ranges."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    file_size = os.path.getsize(path)
    if file_size == 0:
        return [TracePartition(index=0, start=0, end=0)]

    boundaries = [0]
    with open(path, "r", encoding="utf-8") as handle:
        for index in range(1, num_partitions):
            target = (file_size * index) // num_partitions
            aligned = _align_to_block_start(handle, target, file_size)
            boundaries.append(aligned)
    boundaries.append(file_size)

    partitions: List[TracePartition] = []
    for index in range(num_partitions):
        start = boundaries[index]
        end = boundaries[index + 1]
        if end < start:
            end = start
        partitions.append(TracePartition(index=index, start=start, end=end))
    return partitions


def _parse_partition(path: str, start: int, end: int) -> List[TraceRecord]:
    """Worker: parse the byte range ``[start, end)`` of ``path``."""
    if end <= start:
        return []
    with open(path, "r", encoding="utf-8") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    return parse_record_lines(data.splitlines())


def read_trace_file_parallel(path: str, num_workers: int = 4,
                             use_processes: bool = False) -> Trace:
    """Read a trace file by parsing block-aligned partitions concurrently.

    The result is identical (record for record, in dynamic-id order) to the
    serial :func:`repro.trace.textio.read_trace_file`; the property-based
    tests assert this equivalence.
    """
    module_name, globals_ = read_preamble(path)
    partitions = partition_offsets(path, max(1, num_workers))

    if len(partitions) == 1 or num_workers <= 1:
        records = _parse_partition(path, partitions[0].start, partitions[-1].end)
        return Trace(module_name=module_name, globals=globals_, records=records)

    executor_cls = ProcessPoolExecutor if use_processes else ThreadPoolExecutor
    chunks: List[Optional[List[TraceRecord]]] = [None] * len(partitions)
    with executor_cls(max_workers=num_workers) as executor:
        futures = {
            executor.submit(_parse_partition, path, part.start, part.end): part.index
            for part in partitions
        }
        for future, index in futures.items():
            chunks[index] = future.result()

    records: List[TraceRecord] = []
    for chunk in chunks:
        if chunk:
            records.extend(chunk)
    records.sort(key=lambda record: record.dyn_id)
    return Trace(module_name=module_name, globals=globals_, records=records)
