"""Parallel, block-boundary-preserving trace-file reading.

This reproduces the paper's pre-processing optimization (Sec. V-A): the
master partitions the input file stream into sub-file-streams *without
breaking individual instruction blocks* and worker threads/processes parse
the sub-streams concurrently.  The paper uses 48 OpenMP threads; here the
worker pool is either a thread pool (default, low overhead) or a
:class:`concurrent.futures.ProcessPoolExecutor` for genuinely parallel
parsing of very large traces.

Two on-disk encodings are supported and sniffed automatically:

* the line-oriented **text** format (:mod:`repro.trace.textio`) — partition
  boundaries are found by scanning forward for the next ``0,`` block-start
  line.  All offsets are *byte* offsets and all handles are opened in
  **binary** mode: seeking through a text-mode handle with byte offsets
  derived from ``os.path.getsize`` misaligns partitions as soon as the trace
  contains a multi-byte (non-ASCII) identifier or ``\\r\\n`` line endings.
  Each aligned chunk is whole lines by construction, so it is decoded as
  UTF-8 per chunk before parsing.
* the block-indexed **binary** format (:mod:`repro.trace.binio`) — partition
  boundaries come straight from the block-offset index in the footer, so no
  scanning is needed at all.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional

from repro.trace.binio import is_binary_trace_file, read_trace_file_binary_parallel
from repro.trace.records import Trace, TraceRecord
from repro.trace.textio import parse_record_lines, read_preamble

#: Every instruction block starts with a line whose first field is ``0``.
RECORD_PREFIX = b"0,"


@dataclass(frozen=True)
class TracePartition:
    """A byte range of the trace file containing only whole instruction blocks."""

    index: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class RecordRange:
    """A half-open range of *record indices* ``[start, end)``.

    The unit the parallel fused analysis engine shards on: unlike the byte
    ranges of :class:`TracePartition`, record-index ranges are exact for any
    encoding that can seek to a record (the binary format's block index
    makes the seek O(1)).
    """

    index: int
    start: int
    end: int

    @property
    def count(self) -> int:
        return self.end - self.start


def partition_records(record_count: int,
                      num_partitions: int) -> List[RecordRange]:
    """Split ``record_count`` records into ``num_partitions`` contiguous ranges.

    Always returns exactly ``num_partitions`` well-formed ranges that tile
    ``[0, record_count)`` in order.  Edge cases need no caller-side guards:
    an empty trace yields all-empty ranges, and more partitions than records
    yields (interleaved) empty ranges — a range's :attr:`RecordRange.count`
    may be zero.

    Args:
        record_count: total number of records (>= 0).
        num_partitions: how many ranges to produce (>= 1).

    Returns:
        ``num_partitions`` :class:`RecordRange` objects, sized within one
        record of each other.

    Raises:
        ValueError: when ``num_partitions < 1`` or ``record_count < 0``.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if record_count < 0:
        raise ValueError("record_count must be >= 0")
    boundaries = [(record_count * part) // num_partitions
                  for part in range(num_partitions)] + [record_count]
    return [RecordRange(index=part, start=boundaries[part],
                        end=boundaries[part + 1])
            for part in range(num_partitions)]


def _align_to_block_start(handle, offset: int, file_size: int) -> int:
    """Advance ``offset`` to the beginning of the next instruction block.

    Instruction blocks always start with a line whose first field is ``0``
    (the same property the paper relies on for LLVM-Tracer output), so the
    next block boundary is the next line starting with ``0,``.  ``handle``
    must be opened in binary mode so that ``tell()`` returns exact byte
    offsets regardless of the characters in the trace.
    """
    if offset <= 0:
        return 0
    if offset >= file_size:
        return file_size
    handle.seek(offset)
    handle.readline()  # skip the (possibly partial) current line
    while True:
        position = handle.tell()
        line = handle.readline()
        if not line:
            return file_size
        if line.startswith(RECORD_PREFIX):
            return position


def partition_offsets(path: str, num_partitions: int) -> List[TracePartition]:
    """Split a text trace file into ``num_partitions`` block-aligned byte ranges.

    Always returns exactly ``num_partitions`` partitions tiling the file in
    order; partitions may be empty (an empty file yields all-empty
    partitions, and a trace with fewer instruction blocks than partitions
    leaves the surplus partitions empty) so callers need no special-case
    guards.

    Args:
        path: text trace file to partition.
        num_partitions: how many byte ranges to produce (>= 1).

    Returns:
        ``num_partitions`` :class:`TracePartition` objects whose internal
        boundaries each fall on an instruction-block start.

    Raises:
        ValueError: when ``num_partitions < 1``.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    file_size = os.path.getsize(path)
    if file_size == 0:
        return [TracePartition(index=part, start=0, end=0)
                for part in range(num_partitions)]

    boundaries = [0]
    with open(path, "rb") as handle:
        for index in range(1, num_partitions):
            target = (file_size * index) // num_partitions
            aligned = _align_to_block_start(handle, target, file_size)
            boundaries.append(aligned)
    boundaries.append(file_size)

    partitions: List[TracePartition] = []
    for index in range(num_partitions):
        start = boundaries[index]
        end = boundaries[index + 1]
        if end < start:
            end = start
        partitions.append(TracePartition(index=index, start=start, end=end))
    return partitions


def _parse_partition(path: str, start: int, end: int) -> List[TraceRecord]:
    """Worker: parse the byte range ``[start, end)`` of ``path``.

    The range is read in binary mode — partition offsets are byte offsets —
    and decoded per chunk; block alignment guarantees the chunk contains
    whole lines, so no multi-byte character is ever split.
    """
    if end <= start:
        return []
    with open(path, "rb") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    return parse_record_lines(data.decode("utf-8").splitlines())


def read_trace_file_parallel(path: str, num_workers: int = 4,
                             use_processes: bool = False) -> Trace:
    """Read a trace file by parsing block-aligned partitions concurrently.

    Sniffs the on-disk format: block-indexed binary traces are dispatched to
    :func:`repro.trace.binio.read_trace_file_binary_parallel`.  The result is
    identical (record for record) to the serial
    :func:`repro.trace.textio.read_trace_file`; the property-based tests
    assert this equivalence.

    Args:
        path: trace file in either encoding.
        num_workers: partition/worker count (values < 1 behave like 1).
        use_processes: parse with a process pool instead of the default
            thread pool (worth it only for very large traces).

    Returns:
        The fully materialized :class:`Trace`, records in file order.
    """
    if is_binary_trace_file(path):
        return read_trace_file_binary_parallel(path, num_workers=num_workers,
                                               use_processes=use_processes)
    module_name, globals_ = read_preamble(path)
    partitions = partition_offsets(path, max(1, num_workers))

    if len(partitions) == 1 or num_workers <= 1:
        records = _parse_partition(path, partitions[0].start, partitions[-1].end)
        return Trace(module_name=module_name, globals=globals_, records=records)

    executor_cls = ProcessPoolExecutor if use_processes else ThreadPoolExecutor
    chunks: List[Optional[List[TraceRecord]]] = [None] * len(partitions)
    with executor_cls(max_workers=num_workers) as executor:
        futures = {
            executor.submit(_parse_partition, path, part.start, part.end): part.index
            for part in partitions
        }
        for future, index in futures.items():
            chunks[index] = future.result()

    records: List[TraceRecord] = []
    for chunk in chunks:
        if chunk:
            records.extend(chunk)
    records.sort(key=lambda record: record.dyn_id)
    return Trace(module_name=module_name, globals=globals_, records=records)
