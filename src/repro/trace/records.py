"""In-memory representation of dynamic instruction execution traces.

A trace consists of a *globals preamble* (one :class:`GlobalSymbol` per
module-level variable, giving its base address and extent — information a
real LLVM-Tracer run exposes through the first ``Load``/``Store`` touching
the global) followed by one :class:`TraceRecord` per executed IR instruction.

Each record carries exactly the information the paper's Fig. 1 describes:

* the source line of the instruction,
* the function it executes in,
* basic block id and label,
* the opcode (numeric, LLVM 3.4 numbering) and its mnemonic,
* the dynamic instruction id (position in execution order),
* one entry per operand and one for the result, each with: operand id, size
  in bits, runtime value, a register-or-variable flag, the register/variable
  name, and — for memory operands — the concrete memory address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Union

from repro.ir.opcodes import ARITHMETIC_OPCODE_VALUES, Opcode

#: Operand index used for instruction results (paper Fig. 1 uses ``r``).
RESULT_INDEX = "r"
#: Operand index prefix used for callee formal parameters (paper Fig. 6b).
PARAM_INDEX_PREFIX = "p"


@dataclass(slots=True)
class TraceOperand:
    """One operand (or the result) of a dynamic instruction.

    Treat instances as immutable: millions of them are decoded per trace, so
    the class trades the enforced frozenness of a ``frozen=True`` dataclass
    for the ~2x cheaper construction and attribute access of ``slots=True``
    (the trace readers are the hottest path in the system).
    """

    index: str
    bits: int
    value: Union[int, float]
    is_register: bool
    name: str = ""
    address: Optional[int] = None

    @property
    def is_parameter(self) -> bool:
        return self.index.startswith(PARAM_INDEX_PREFIX)

    @property
    def is_memory(self) -> bool:
        return self.address is not None


@dataclass(slots=True)
class TraceRecord:
    """One executed IR instruction (slotted — one per traced instruction)."""

    dyn_id: int
    opcode: int
    opcode_name: str
    function: str
    line: int
    column: int
    bb_label: int
    bb_id: str
    operands: List[TraceOperand] = field(default_factory=list)
    result: Optional[TraceOperand] = None
    callee: str = ""

    # ------------------------------------------------------------------ #
    # Convenience predicates used throughout the analysis
    # ------------------------------------------------------------------ #
    @property
    def op(self) -> Opcode:
        return Opcode(self.opcode)

    @property
    def is_arithmetic(self) -> bool:
        return self.opcode in ARITHMETIC_OPCODE_VALUES

    @property
    def is_load(self) -> bool:
        return self.opcode == Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode == Opcode.STORE

    @property
    def is_alloca(self) -> bool:
        return self.opcode == Opcode.ALLOCA

    @property
    def is_call(self) -> bool:
        return self.opcode == Opcode.CALL

    @property
    def is_gep(self) -> bool:
        return self.opcode == Opcode.GETELEMENTPTR

    def memory_operand(self) -> Optional[TraceOperand]:
        """The named-variable memory operand of a Load/Store/GEP/Alloca."""
        if self.is_load or self.is_gep:
            return self.operands[0] if self.operands else None
        if self.is_store:
            return self.operands[1] if len(self.operands) > 1 else None
        if self.is_alloca:
            return self.result
        return None

    def parameter_operands(self) -> List[TraceOperand]:
        return [op for op in self.operands if op.is_parameter]

    def argument_operands(self) -> List[TraceOperand]:
        return [op for op in self.operands if not op.is_parameter]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TraceRecord #{self.dyn_id} {self.opcode_name} "
                f"{self.function}:{self.line}>")


@dataclass(frozen=True, slots=True)
class GlobalSymbol:
    """Globals preamble entry: name, base address and extent of a module global."""

    name: str
    address: int
    size_bytes: int
    element_bits: int
    is_array: bool

    @property
    def end_address(self) -> int:
        return self.address + self.size_bytes

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end_address


@dataclass
class Trace:
    """A full dynamic trace: globals preamble + execution records."""

    module_name: str = "module"
    globals: List[GlobalSymbol] = field(default_factory=list)
    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self.records.extend(records)

    def global_symbol(self, name: str) -> Optional[GlobalSymbol]:
        for symbol in self.globals:
            if symbol.name == name:
                return symbol
        return None

    def functions(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.function not in seen:
                seen.append(record.function)
        return seen

    def records_in_function(self, function: str) -> List[TraceRecord]:
        return [record for record in self.records if record.function == function]

    def slice(self, first_dyn_id: int, last_dyn_id: int) -> List[TraceRecord]:
        """Records whose dynamic id lies in ``[first_dyn_id, last_dyn_id]``."""
        return [record for record in self.records
                if first_dyn_id <= record.dyn_id <= last_dyn_id]
