"""Trace characterization statistics.

The paper motivates several of its findings with trace structure ("more than
95% instructions for initialization and logging and only less than 5% for the
main computation loop" in CoMD, Sec. VI-C).  This module computes those
characterizations from any trace: per-opcode and per-function record counts,
and the before/inside/after split around a main-loop specification.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import MainLoopSpec
from repro.core.preprocessing import partition_trace
from repro.trace.records import Trace
from repro.util.formatting import render_table


@dataclass
class TraceStatistics:
    """Aggregate statistics of one dynamic trace."""

    record_count: int = 0
    global_count: int = 0
    opcode_histogram: Dict[str, int] = field(default_factory=dict)
    function_histogram: Dict[str, int] = field(default_factory=dict)
    memory_access_count: int = 0
    arithmetic_count: int = 0
    call_count: int = 0
    before_count: Optional[int] = None
    inside_count: Optional[int] = None
    after_count: Optional[int] = None

    @property
    def main_loop_fraction(self) -> Optional[float]:
        if self.inside_count is None or self.record_count == 0:
            return None
        return self.inside_count / self.record_count

    def top_opcodes(self, limit: int = 10) -> List[tuple]:
        return Counter(self.opcode_histogram).most_common(limit)

    def summary(self) -> str:
        lines = [
            f"records: {self.record_count} (globals preamble: {self.global_count})",
            f"memory accesses: {self.memory_access_count}, "
            f"arithmetic: {self.arithmetic_count}, calls: {self.call_count}",
        ]
        if self.inside_count is not None:
            lines.append(
                f"before/inside/after main loop: {self.before_count} / "
                f"{self.inside_count} / {self.after_count} "
                f"({(self.main_loop_fraction or 0) * 100:.1f}% inside)")
        rows = [(name, count) for name, count in self.top_opcodes()]
        lines.append(render_table(("opcode", "records"), rows))
        return "\n".join(lines)


def compute_trace_statistics(trace: Trace,
                             main_loop: Optional[MainLoopSpec] = None,
                             ) -> TraceStatistics:
    """Compute aggregate statistics for ``trace``.

    When ``main_loop`` is given the trace is additionally partitioned around
    the loop so the "how much of the trace is the main loop" characterization
    (paper Sec. VI-C) can be reported.
    """
    stats = TraceStatistics(record_count=len(trace.records),
                            global_count=len(trace.globals))
    opcode_counts: Counter = Counter()
    function_counts: Counter = Counter()
    for record in trace.records:
        opcode_counts[record.opcode_name] += 1
        function_counts[record.function] += 1
        if record.is_load or record.is_store:
            stats.memory_access_count += 1
        if record.is_arithmetic:
            stats.arithmetic_count += 1
        if record.is_call:
            stats.call_count += 1
    stats.opcode_histogram = dict(opcode_counts)
    stats.function_histogram = dict(function_counts)

    if main_loop is not None:
        regions = partition_trace(trace, main_loop)
        stats.before_count = len(regions.before)
        stats.inside_count = len(regions.inside)
        stats.after_count = len(regions.after)
    return stats
