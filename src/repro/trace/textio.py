"""Line-oriented text encoding of dynamic traces, and the format front door.

The encoding is comma-separated, one line per entity, and mirrors the
information content of LLVM-Tracer's output (paper Fig. 1/6):

.. code-block:: text

    #,autocheck-trace,1,<module_name>
    g,<name>,<hex address>,<size bytes>,<element bits>,<is_array>
    0,<dyn id>,<opcode>,<opcode name>,<function>,<line>,<column>,<bb label>,<bb id>,<callee>
    op,<operand id>,<bits>,<is reg>,<name>,<value>,<hex address or ->
    res,<bits>,<is reg>,<name>,<value>,<hex address or ->

Every instruction block starts with a ``0,`` line (exactly as the paper notes
for LLVM-Tracer: "The first line of every operation block always starts with
0"), which is what allows the parallel partitioner to split a trace file at
block boundaries without understanding record internals.

Because the separator is a plain comma with no quoting, names containing
``,`` / ``\\n`` / ``\\r`` cannot be represented; the writer *rejects* them at
write time (:class:`TraceFormatError`) instead of silently emitting a trace
that no longer parses — traces that need arbitrary identifiers should use
the binary format (:mod:`repro.trace.binio`).

This module also hosts the format-sniffing front doors used by the rest of
the system: :func:`read_trace_file`, :func:`read_preamble` and
:func:`iter_trace_records` accept either encoding and dispatch on the magic
bytes.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.trace.records import (
    GlobalSymbol,
    RESULT_INDEX,
    Trace,
    TraceOperand,
    TraceRecord,
)

FORMAT_VERSION = 1
HEADER_TAG = "#"
GLOBAL_TAG = "g"
RECORD_TAG = "0"
OPERAND_TAG = "op"
RESULT_TAG = "res"


class TraceFormatError(ValueError):
    """Raised when a trace file does not follow the expected encoding."""


# --------------------------------------------------------------------------- #
# Encoding helpers
# --------------------------------------------------------------------------- #
def _check_field(text: str, what: str) -> str:
    """Reject names the comma-separated format cannot represent.

    Emitting them anyway would silently corrupt the trace (the extra commas
    shift every later field); rejecting at write time turns that into an
    immediate, diagnosable error.  The binary format has no such limits.
    """
    if "," in text or "\n" in text or "\r" in text:
        raise TraceFormatError(
            f"{what} {text!r} contains a comma or newline, which the text "
            f"trace format cannot escape; write the trace in the binary "
            f"format instead")
    return text

def _encode_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _decode_value(text: str) -> Union[int, float]:
    try:
        return int(text)
    except ValueError:
        return float(text)


def _encode_address(address: Optional[int]) -> str:
    return "-" if address is None else hex(address)


def _decode_address(text: str) -> Optional[int]:
    if text == "-" or text == "":
        return None
    return int(text, 16)


def _operand_line(tag: str, operand: TraceOperand) -> str:
    fields = [
        tag,
        _check_field(operand.index, "operand index"),
        str(operand.bits),
        str(int(operand.is_register)),
        _check_field(operand.name, "operand name"),
        _encode_value(operand.value),
        _encode_address(operand.address),
    ]
    if tag == RESULT_TAG:
        fields.pop(1)  # results don't repeat their index (it is always "r")
    return ",".join(fields)


def record_to_lines(record: TraceRecord) -> List[str]:
    """Encode one record as its text lines (header + operands + result)."""
    header = ",".join([
        RECORD_TAG,
        str(record.dyn_id),
        str(record.opcode),
        _check_field(record.opcode_name, "opcode name"),
        _check_field(record.function, "function name"),
        str(record.line),
        str(record.column),
        str(record.bb_label),
        _check_field(record.bb_id, "basic block id"),
        _check_field(record.callee, "callee name"),
    ])
    lines = [header]
    for operand in record.operands:
        lines.append(_operand_line(OPERAND_TAG, operand))
    if record.result is not None:
        lines.append(_operand_line(RESULT_TAG, record.result))
    return lines


def _parse_operand(parts: Sequence[str]) -> TraceOperand:
    # parts: op,<index>,<bits>,<is reg>,<name>,<value>,<addr>
    if len(parts) != 7:
        raise TraceFormatError(
            f"operand line has {len(parts)} fields, expected 7: "
            f"{','.join(parts)!r}")
    return TraceOperand(
        index=parts[1],
        bits=int(parts[2]),
        is_register=bool(int(parts[3])),
        name=parts[4],
        value=_decode_value(parts[5]),
        address=_decode_address(parts[6]),
    )


def _parse_result(parts: Sequence[str]) -> TraceOperand:
    # parts: res,<bits>,<is reg>,<name>,<value>,<addr>
    if len(parts) != 6:
        raise TraceFormatError(
            f"result line has {len(parts)} fields, expected 6: "
            f"{','.join(parts)!r}")
    return TraceOperand(
        index=RESULT_INDEX,
        bits=int(parts[1]),
        is_register=bool(int(parts[2])),
        name=parts[3],
        value=_decode_value(parts[4]),
        address=_decode_address(parts[5]),
    )


def _parse_header(parts: Sequence[str]) -> TraceRecord:
    # parts: 0,<dyn id>,<opcode>,<opcode name>,<function>,<line>,<column>,
    #        <bb label>,<bb id>[,<callee>]
    if len(parts) not in (9, 10):
        raise TraceFormatError(
            f"record header has {len(parts)} fields, expected 9 or 10: "
            f"{','.join(parts)!r}")
    return TraceRecord(
        dyn_id=int(parts[1]),
        opcode=int(parts[2]),
        opcode_name=parts[3],
        function=parts[4],
        line=int(parts[5]),
        column=int(parts[6]),
        bb_label=int(parts[7]),
        bb_id=parts[8],
        callee=parts[9] if len(parts) > 9 else "",
    )


def iter_parsed_records(lines: Iterable[str]) -> Iterator[TraceRecord]:
    """Incrementally parse text lines (no preamble) into complete records.

    A record is yielded only once it is complete, i.e. when the next ``0,``
    block-start line (or the end of the input) is seen.  Lines belonging to
    the globals preamble or the file header are ignored so that callers do
    not need to care which slice of the file they received.
    """
    current: Optional[TraceRecord] = None
    for raw in lines:
        line = raw.rstrip("\r\n")
        if not line:
            continue
        parts = line.split(",")
        tag = parts[0]
        if tag == RECORD_TAG:
            if current is not None:
                yield current
            current = _parse_header(parts)
        elif tag == OPERAND_TAG:
            if current is None:
                raise TraceFormatError(f"operand line before any record: {line!r}")
            current.operands.append(_parse_operand(parts))
        elif tag == RESULT_TAG:
            if current is None:
                raise TraceFormatError(f"result line before any record: {line!r}")
            current.result = _parse_result(parts)
        elif tag in (HEADER_TAG, GLOBAL_TAG):
            continue
        else:
            raise TraceFormatError(f"unrecognised trace line tag {tag!r}")
    if current is not None:
        yield current


def parse_record_lines(lines: Iterable[str]) -> List[TraceRecord]:
    """Parse a sequence of text lines (no preamble) into records.

    Used both by the serial reader and by the parallel partition workers.
    """
    return list(iter_parsed_records(lines))


# --------------------------------------------------------------------------- #
# Writer
# --------------------------------------------------------------------------- #
class TraceTextWriter:
    """Stream a trace to a text file as it is generated."""

    def __init__(self, path: str, module_name: str = "module") -> None:
        self.path = path
        self.module_name = _check_field(module_name, "module name")
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8",
                                           newline="\n")
        self._fh.write(f"{HEADER_TAG},autocheck-trace,{FORMAT_VERSION},{module_name}\n")
        self._record_count = 0

    def write_global(self, symbol: GlobalSymbol) -> None:
        assert self._fh is not None
        self._fh.write(",".join([
            GLOBAL_TAG,
            _check_field(symbol.name, "global name"),
            hex(symbol.address),
            str(symbol.size_bytes),
            str(symbol.element_bits),
            str(int(symbol.is_array)),
        ]) + "\n")

    def write_record(self, record: TraceRecord) -> None:
        assert self._fh is not None
        self._fh.write("\n".join(record_to_lines(record)) + "\n")
        self._record_count += 1

    @property
    def record_count(self) -> int:
        return self._record_count

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceTextWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace_file(trace: Trace, path: str) -> int:
    """Write an in-memory trace to ``path``; return the file size in bytes."""
    with TraceTextWriter(path, module_name=trace.module_name) as writer:
        for symbol in trace.globals:
            writer.write_global(symbol)
        for record in trace.records:
            writer.write_record(record)
    return os.path.getsize(path)


# --------------------------------------------------------------------------- #
# Reader
# --------------------------------------------------------------------------- #
class TraceTextReader:
    """Read a text trace back into memory (serially)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def read(self) -> Trace:
        module_name = "module"
        globals_: List[GlobalSymbol] = []
        record_lines: List[str] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                stripped = line.rstrip("\n")
                if not stripped:
                    continue
                tag = stripped.split(",", 1)[0]
                if tag == HEADER_TAG:
                    parts = stripped.split(",")
                    if len(parts) >= 4:
                        module_name = parts[3]
                elif tag == GLOBAL_TAG:
                    parts = stripped.split(",")
                    globals_.append(GlobalSymbol(
                        name=parts[1],
                        address=int(parts[2], 16),
                        size_bytes=int(parts[3]),
                        element_bits=int(parts[4]),
                        is_array=bool(int(parts[5])),
                    ))
                else:
                    record_lines.append(stripped)
        records = parse_record_lines(record_lines)
        return Trace(module_name=module_name, globals=globals_, records=records)


def iter_trace_file_text(path: str,
                         start_record: int = 0) -> Iterator[TraceRecord]:
    """Stream the records of a text trace without materializing the trace.

    ``start_record`` records are parsed and discarded before yielding begins
    (the text format has no index, so there is no way to seek); binary traces
    seek via their block index instead.
    """
    with open(path, encoding="utf-8") as handle:
        for index, record in enumerate(iter_parsed_records(handle)):
            if index >= start_record:
                yield record


# --------------------------------------------------------------------------- #
# Format-sniffing front doors
# --------------------------------------------------------------------------- #
def sniff_trace_format(path: str) -> str:
    """``"binary"`` or ``"text"``, decided by the file's magic bytes."""
    from repro.trace.binio import is_binary_trace_file

    return "binary" if is_binary_trace_file(path) else "text"


def read_trace_file(path: str) -> Trace:
    """Read a trace file of either encoding (sniffed) into memory."""
    from repro.trace.binio import is_binary_trace_file, read_trace_file_binary

    if is_binary_trace_file(path):
        return read_trace_file_binary(path)
    return TraceTextReader(path).read()


def iter_trace_records(path: str,
                       start_record: int = 0) -> Iterator[TraceRecord]:
    """Stream the records of a trace file of either encoding (sniffed)."""
    from repro.trace.binio import is_binary_trace_file, iter_trace_file_binary

    if is_binary_trace_file(path):
        return iter_trace_file_binary(path, start_record=start_record)
    return iter_trace_file_text(path, start_record=start_record)


def read_preamble(path: str) -> Tuple[str, List[GlobalSymbol]]:
    """Read only the module name and globals of a trace file (sniffed).

    Raises:
        TraceFormatError: on a malformed text preamble — the message names
            the offending file and line, so a bad trace surfaced deep inside
            a batch or cache run is attributable without a stack trace.
        repro.trace.binio.BinaryTraceError: on a truncated or corrupt
            binary trace (the message names the file).
    """
    from repro.trace.binio import is_binary_trace_file, read_preamble_binary

    if is_binary_trace_file(path):
        return read_preamble_binary(path)
    module_name = "module"
    globals_: List[GlobalSymbol] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            stripped = line.rstrip("\n")
            if not stripped:
                continue
            tag = stripped.split(",", 1)[0]
            if tag == HEADER_TAG:
                parts = stripped.split(",")
                if len(parts) >= 4:
                    module_name = parts[3]
            elif tag == GLOBAL_TAG:
                parts = stripped.split(",")
                try:
                    globals_.append(GlobalSymbol(
                        name=parts[1],
                        address=int(parts[2], 16),
                        size_bytes=int(parts[3]),
                        element_bits=int(parts[4]),
                        is_array=bool(int(parts[5])),
                    ))
                except (ValueError, IndexError) as exc:
                    raise TraceFormatError(
                        f"{path!r}: malformed globals preamble line "
                        f"{stripped!r}: {exc}") from exc
            else:
                break
    return module_name, globals_
