"""``repro.tracer`` — the dynamic execution substrate (LLVM-Tracer substitute).

The paper instruments benchmarks with LLVM-Tracer and executes them natively
to obtain a *dynamic instruction execution trace*.  Here the same artefact is
produced by directly interpreting the LLVM-like IR:

* :mod:`repro.tracer.memory` — a concrete memory model (global segment,
  per-frame stack allocations, element-granular addresses) so every trace
  operand can carry a real memory address;
* :mod:`repro.tracer.interpreter` — executes a compiled module, emitting one
  :class:`repro.trace.records.TraceRecord` per executed instruction, with
  block-entry hooks used by checkpoint instrumentation and fault injection;
* :mod:`repro.tracer.runtime` — deterministic builtins (``sqrt``, ``pow``,
  ``rand``, ``clock``, ``print``);
* :mod:`repro.tracer.faults` — fail-stop fault injection (the equivalent of
  the paper's ``raise(SIGTERM)`` inside the main loop);
* :mod:`repro.tracer.driver` — convenience entry points tying front end,
  code generator, interpreter and trace emission together.
"""

from repro.tracer.values import PointerValue, RuntimeValue
from repro.tracer.memory import Allocation, Memory, MemoryError_
from repro.tracer.faults import FaultInjector, SimulatedFailure
from repro.tracer.interpreter import (
    ExecutionResult,
    HookContext,
    Interpreter,
    InterpreterError,
)
from repro.tracer.driver import (
    compile_and_run,
    run_and_trace,
    trace_to_file,
)

__all__ = [
    "PointerValue",
    "RuntimeValue",
    "Allocation",
    "Memory",
    "MemoryError_",
    "FaultInjector",
    "SimulatedFailure",
    "ExecutionResult",
    "HookContext",
    "Interpreter",
    "InterpreterError",
    "compile_and_run",
    "run_and_trace",
    "trace_to_file",
]
