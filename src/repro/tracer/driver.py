"""High-level entry points tying the front end, code generator and tracer.

These are the convenience functions the examples, tests and the experiment
harnesses call:

* :func:`compile_and_run` — run a mini-C source without tracing (fast),
  returning the program output;
* :func:`run_and_trace` — run a compiled module with an in-memory trace sink,
  returning both the :class:`repro.trace.records.Trace` and the
  :class:`repro.tracer.interpreter.ExecutionResult`;
* :func:`trace_to_file` — run a module streaming the trace to a file
  (``fmt="text"`` matches what the paper's LLVM-Tracer setup produces,
  ``fmt="binary"`` streams the compact block-indexed encoding), returning
  the file size — the "Trace size" column of paper Table II.
"""

from __future__ import annotations

import os
from typing import Tuple, Union

from repro.codegen.lowering import compile_source
from repro.ir.module import Module
from repro.trace.binio import TraceBinaryWriter
from repro.trace.records import Trace
from repro.trace.textio import TraceTextWriter
from repro.tracer.interpreter import ExecutionResult, InMemoryTraceSink, Interpreter

#: Writers selectable by ``trace_to_file``'s ``fmt`` argument.
TRACE_WRITERS = {
    "text": TraceTextWriter,
    "binary": TraceBinaryWriter,
}


def _as_module(program: Union[str, Module], module_name: str) -> Module:
    if isinstance(program, Module):
        return program
    return compile_source(program, module_name=module_name)


def compile_and_run(program: Union[str, Module], module_name: str = "module",
                    seed: int = 314159,
                    max_steps: int = 50_000_000) -> ExecutionResult:
    """Compile (if needed) and execute a program without emitting a trace."""
    module = _as_module(program, module_name)
    interpreter = Interpreter(module, trace_sink=None, seed=seed, max_steps=max_steps)
    return interpreter.run()


def run_and_trace(program: Union[str, Module], module_name: str = "module",
                  seed: int = 314159,
                  max_steps: int = 50_000_000) -> Tuple[Trace, ExecutionResult]:
    """Execute a program collecting its dynamic trace in memory."""
    module = _as_module(program, module_name)
    sink = InMemoryTraceSink(module_name=module.name)
    interpreter = Interpreter(module, trace_sink=sink, seed=seed, max_steps=max_steps)
    result = interpreter.run()
    return sink.trace, result


def trace_to_file(program: Union[str, Module], path: str,
                  module_name: str = "module", seed: int = 314159,
                  max_steps: int = 50_000_000,
                  fmt: str = "text") -> Tuple[int, ExecutionResult]:
    """Execute a program streaming its dynamic trace to ``path``.

    ``fmt`` selects the on-disk encoding: ``"text"`` (line-oriented,
    LLVM-Tracer-like) or ``"binary"`` (block-indexed, the fast path for
    large traces).  Returns the trace file size in bytes together with the
    execution result.
    """
    try:
        writer_cls = TRACE_WRITERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown trace format {fmt!r}; expected one of "
            f"{sorted(TRACE_WRITERS)}") from None
    module = _as_module(program, module_name)
    with writer_cls(path, module_name=module.name) as writer:
        interpreter = Interpreter(module, trace_sink=writer, seed=seed,
                                  max_steps=max_steps)
        result = interpreter.run()
    return os.path.getsize(path), result
