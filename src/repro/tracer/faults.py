"""Fail-stop fault injection.

The paper validates the identified variables by inserting
``raise(SIGTERM)`` in the main computation loop, checkpointing the detected
variables with FTI, and restarting (Sec. VI-B).  The interpreter equivalent
is a block-entry hook that aborts execution with :class:`SimulatedFailure`
once the target block (normally the main loop body) has been entered a given
number of times — i.e. the process "crashes" mid-iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class SimulatedFailure(Exception):
    """Raised to model a fail-stop process failure (power loss, SIGTERM...)."""

    def __init__(self, message: str, iteration: Optional[int] = None) -> None:
        super().__init__(message)
        self.iteration = iteration


@dataclass
class FaultInjector:
    """Abort execution when a block has been entered ``fail_at_entry`` times."""

    function: str
    block: str
    fail_at_entry: int
    fired: bool = False

    def __call__(self, context) -> None:  # context: HookContext
        if self.fired:
            return
        if context.entry_count >= self.fail_at_entry:
            self.fired = True
            raise SimulatedFailure(
                f"simulated fail-stop failure in {self.function}/{self.block} "
                f"at entry {context.entry_count}",
                iteration=context.entry_count,
            )
