"""The tracing IR interpreter (LLVM-Tracer substitute).

Executes a compiled :class:`repro.ir.module.Module` starting at ``main``,
emitting one dynamic :class:`repro.trace.records.TraceRecord` per executed
instruction into a pluggable *trace sink* (in-memory or text file).  Block
entry hooks allow checkpoint instrumentation and fault injection to observe
and alter a run without touching the program itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BitCastInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    GEPInst,
    Instruction,
    LoadInst,
    PrintInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.opcodes import Opcode
from repro.ir.types import ArrayType, PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, Register, Value
from repro.trace.records import GlobalSymbol, RESULT_INDEX, Trace, TraceOperand, TraceRecord
from repro.tracer.faults import SimulatedFailure
from repro.tracer.memory import Allocation, Memory
from repro.tracer.runtime import Runtime, RuntimeError_, format_print_output
from repro.tracer.values import PointerValue, RuntimeValue, as_number


class InterpreterError(Exception):
    """Raised on runtime errors in the interpreted program."""


class InMemoryTraceSink:
    """Collects the dynamic trace in memory (used by tests and benchmarks)."""

    def __init__(self, module_name: str = "module") -> None:
        self.trace = Trace(module_name=module_name)

    def write_global(self, symbol: GlobalSymbol) -> None:
        self.trace.globals.append(symbol)

    def write_record(self, record: TraceRecord) -> None:
        self.trace.records.append(record)


@dataclass
class Frame:
    """One activation record of the interpreted program."""

    function: Function
    args: List[RuntimeValue]
    regs: Dict[int, RuntimeValue] = field(default_factory=dict)
    allocations: Dict[str, Allocation] = field(default_factory=dict)
    stack_mark: int = 0


@dataclass
class HookContext:
    """Information handed to block-entry hooks."""

    interpreter: "Interpreter"
    frame: Frame
    function_name: str
    block_name: str
    entry_count: int


@dataclass
class ExecutionResult:
    """Outcome of one interpreted run."""

    output: List[str]
    return_value: Optional[RuntimeValue]
    steps: int
    failed: bool = False
    failure: Optional[SimulatedFailure] = None
    memory: Optional[Memory] = None

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)


class Interpreter:
    """Execute a module and (optionally) emit its dynamic instruction trace."""

    def __init__(self, module: Module, trace_sink=None, seed: int = 314159,
                 max_steps: int = 50_000_000, max_call_depth: int = 200) -> None:
        self.module = module
        self.sink = trace_sink
        self.runtime = Runtime(seed)
        self.memory = Memory()
        self.output: List[str] = []
        self.frames: List[Frame] = []
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.steps = 0
        self.dyn_counter = 0
        self.global_allocations: Dict[str, Allocation] = {}
        self._block_hooks: Dict[Tuple[str, str], List[Callable[[HookContext], None]]] = {}
        self._block_entry_counts: Dict[Tuple[str, str], int] = {}
        self._globals_ready = False

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def register_block_hook(self, function_name: str, block_name: str,
                            callback: Callable[[HookContext], None]) -> None:
        self._block_hooks.setdefault((function_name, block_name), []).append(callback)

    def block_entry_count(self, function_name: str, block_name: str) -> int:
        return self._block_entry_counts.get((function_name, block_name), 0)

    @property
    def current_frame(self) -> Frame:
        if not self.frames:
            raise InterpreterError("no active frame")
        return self.frames[-1]

    def resolve_variable(self, name: str,
                         frame: Optional[Frame] = None) -> Optional[Allocation]:
        """Find the allocation backing ``name`` in ``frame`` (or globals)."""
        frame = frame or (self.frames[-1] if self.frames else None)
        if frame is not None and name in frame.allocations:
            return frame.allocations[name]
        return self.global_allocations.get(name)

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self, entry: str = "main",
            args: Sequence[RuntimeValue] = ()) -> ExecutionResult:
        self._setup_globals()
        failed = False
        failure: Optional[SimulatedFailure] = None
        return_value: Optional[RuntimeValue] = None
        try:
            function = self.module.function(entry)
        except KeyError as exc:
            raise InterpreterError(f"no function named {entry!r}") from exc
        try:
            return_value = self._call_function(function, list(args))
        except SimulatedFailure as exc:
            failed = True
            failure = exc
        return ExecutionResult(output=list(self.output), return_value=return_value,
                               steps=self.steps, failed=failed, failure=failure,
                               memory=self.memory)

    def _setup_globals(self) -> None:
        if self._globals_ready:
            return
        for gvar in self.module.globals:
            value_type = gvar.value_type
            if isinstance(value_type, ArrayType):
                element_bits = value_type.element.size_in_bits()
                count = value_type.count
                is_array = True
            else:
                element_bits = value_type.size_in_bits()
                count = 1
                is_array = False
            allocation = self.memory.allocate_global(gvar.name, element_bits,
                                                     count, is_array)
            self.global_allocations[gvar.name] = allocation
            if gvar.initializer is not None:
                self.memory.store(allocation.address, gvar.initializer)
            if self.sink is not None:
                self.sink.write_global(GlobalSymbol(
                    name=gvar.name, address=allocation.address,
                    size_bytes=allocation.size_bytes,
                    element_bits=element_bits, is_array=is_array))
        self._globals_ready = True

    # ------------------------------------------------------------------ #
    # Function execution
    # ------------------------------------------------------------------ #
    def _call_function(self, function: Function,
                       args: List[RuntimeValue]) -> Optional[RuntimeValue]:
        if len(self.frames) >= self.max_call_depth:
            raise InterpreterError(f"call depth exceeded in {function.name!r}")
        frame = Frame(function=function, args=args,
                      stack_mark=self.memory.stack_mark())
        self.frames.append(frame)
        try:
            block = function.entry
            while True:
                self._enter_block(frame, block)
                action: Optional[Tuple[str, object]] = None
                for inst in block.instructions:
                    action = self._execute(frame, inst)
                    if action is not None:
                        break
                if action is None:
                    raise InterpreterError(
                        f"{function.name}/{block.name}: fell off the end of a block")
                kind, payload = action
                if kind == "branch":
                    block = payload  # type: ignore[assignment]
                    continue
                return payload  # type: ignore[return-value]
        finally:
            self.frames.pop()
            self.memory.stack_release(frame.stack_mark)

    def _enter_block(self, frame: Frame, block: BasicBlock) -> None:
        key = (frame.function.name, block.name)
        count = self._block_entry_counts.get(key, 0) + 1
        self._block_entry_counts[key] = count
        hooks = self._block_hooks.get(key)
        if hooks:
            context = HookContext(interpreter=self, frame=frame,
                                  function_name=frame.function.name,
                                  block_name=block.name, entry_count=count)
            for hook in hooks:
                hook(context)

    # ------------------------------------------------------------------ #
    # Operand evaluation and trace helpers
    # ------------------------------------------------------------------ #
    def _eval(self, frame: Frame, value: Value) -> RuntimeValue:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Register):
            try:
                return frame.regs[value.rid]
            except KeyError as exc:
                raise InterpreterError(
                    f"use of unset register %{value.rid} in {frame.function.name}") from exc
        if isinstance(value, GlobalVariable):
            allocation = self.global_allocations[value.name]
            element_bits = allocation.element_bits
            return PointerValue(allocation.address, value.name, element_bits)
        if isinstance(value, Argument):
            return frame.args[value.index]
        raise InterpreterError(f"cannot evaluate operand {value!r}")

    def _value_operand(self, index: str, ir_value: Value,
                       runtime_value: RuntimeValue) -> TraceOperand:
        bits = ir_value.type.size_in_bits() if ir_value.type is not None else 64
        if isinstance(ir_value, Register):
            address = runtime_value.address if isinstance(runtime_value, PointerValue) else None
            return TraceOperand(index=index, bits=bits,
                                value=as_number(runtime_value), is_register=True,
                                name=str(ir_value.rid), address=address)
        if isinstance(ir_value, GlobalVariable):
            address = runtime_value.address if isinstance(runtime_value, PointerValue) else None
            return TraceOperand(index=index, bits=bits,
                                value=as_number(runtime_value), is_register=False,
                                name=ir_value.name, address=address)
        if isinstance(ir_value, Argument):
            address = runtime_value.address if isinstance(runtime_value, PointerValue) else None
            return TraceOperand(index=index, bits=bits,
                                value=as_number(runtime_value), is_register=False,
                                name=ir_value.name, address=address)
        # Constant
        return TraceOperand(index=index, bits=bits, value=as_number(runtime_value),
                            is_register=False, name="", address=None)

    def _register_result(self, inst: Instruction,
                         runtime_value: RuntimeValue) -> Optional[TraceOperand]:
        if inst.result is None:
            return None
        bits = inst.result.type.size_in_bits()
        address = runtime_value.address if isinstance(runtime_value, PointerValue) else None
        return TraceOperand(index=RESULT_INDEX, bits=bits,
                            value=as_number(runtime_value), is_register=True,
                            name=str(inst.result.rid), address=address)

    def _emit(self, frame: Frame, inst: Instruction,
              operands: List[TraceOperand],
              result: Optional[TraceOperand] = None, callee: str = "") -> None:
        self.dyn_counter += 1
        if self.sink is None:
            return
        block = inst.parent
        bb_label = block.label if block is not None else 0
        bb_id = f"{block.first_line}:{bb_label}" if block is not None else "0:0"
        record = TraceRecord(
            dyn_id=self.dyn_counter,
            opcode=int(inst.opcode),
            opcode_name=inst.mnemonic,
            function=frame.function.name,
            line=inst.line,
            column=inst.column,
            bb_label=bb_label,
            bb_id=bb_id,
            operands=operands,
            result=result,
            callee=callee,
        )
        self.sink.write_record(record)

    # ------------------------------------------------------------------ #
    # Instruction execution
    # ------------------------------------------------------------------ #
    def _execute(self, frame: Frame,
                 inst: Instruction) -> Optional[Tuple[str, object]]:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError(
                f"instruction budget of {self.max_steps} exceeded "
                f"(possible infinite loop in {frame.function.name!r})")

        if isinstance(inst, AllocaInst):
            self._exec_alloca(frame, inst)
        elif isinstance(inst, LoadInst):
            self._exec_load(frame, inst)
        elif isinstance(inst, StoreInst):
            self._exec_store(frame, inst)
        elif isinstance(inst, GEPInst):
            self._exec_gep(frame, inst)
        elif isinstance(inst, BitCastInst):
            self._exec_bitcast(frame, inst)
        elif isinstance(inst, CastInst):
            self._exec_cast(frame, inst)
        elif isinstance(inst, CmpInst):
            self._exec_cmp(frame, inst)
        elif isinstance(inst, BinaryInst):
            self._exec_binary(frame, inst)
        elif isinstance(inst, PrintInst):
            self._exec_print(frame, inst)
        elif isinstance(inst, CallInst):
            self._exec_call(frame, inst)
        elif isinstance(inst, BranchInst):
            return self._exec_branch(frame, inst)
        elif isinstance(inst, RetInst):
            return self._exec_ret(frame, inst)
        else:  # pragma: no cover - defensive
            raise InterpreterError(f"cannot execute instruction {inst!r}")
        return None

    def _exec_alloca(self, frame: Frame, inst: AllocaInst) -> None:
        allocated = inst.allocated_type
        if isinstance(allocated, ArrayType):
            element_bits = allocated.element.size_in_bits()
            count = allocated.count
            is_array = True
        elif isinstance(allocated, PointerType):
            element_bits = 64
            count = 1
            is_array = False
        else:
            element_bits = allocated.size_in_bits()
            count = 1
            is_array = False
        allocation = self.memory.allocate_stack(inst.var_name, element_bits, count,
                                                is_array, frame.function.name)
        frame.allocations[inst.var_name] = allocation
        pointer = PointerValue(allocation.address, inst.var_name, element_bits)
        assert inst.result is not None
        frame.regs[inst.result.rid] = pointer
        operands = [TraceOperand(index="1", bits=32, value=count, is_register=False,
                                 name="count", address=None)]
        result = TraceOperand(index=RESULT_INDEX, bits=element_bits, value=0,
                              is_register=False, name=inst.var_name,
                              address=allocation.address)
        self._emit(frame, inst, operands, result)

    def _exec_load(self, frame: Frame, inst: LoadInst) -> None:
        pointer = self._eval(frame, inst.pointer)
        if not isinstance(pointer, PointerValue):
            raise InterpreterError(f"load through a non-pointer value at line {inst.line}")
        assert inst.result is not None
        default: RuntimeValue = 0.0 if inst.result.type.is_float else 0
        value = self.memory.load(pointer.address, default)
        frame.regs[inst.result.rid] = value
        bits = inst.result.type.size_in_bits()
        operands = [TraceOperand(index="1", bits=bits, value=as_number(value),
                                 is_register=False, name=pointer.symbol,
                                 address=pointer.address)]
        self._emit(frame, inst, operands, self._register_result(inst, value))

    def _exec_store(self, frame: Frame, inst: StoreInst) -> None:
        value = self._eval(frame, inst.value)
        pointer = self._eval(frame, inst.pointer)
        if not isinstance(pointer, PointerValue):
            raise InterpreterError(f"store through a non-pointer value at line {inst.line}")
        stored = value
        if isinstance(value, PointerValue):
            # Storing a pointer into a (parameter) slot: from now on the
            # pointer travels under the slot's name, as LLVM-Tracer reports.
            stored = value.with_symbol(pointer.symbol)
        self.memory.store(pointer.address, stored)
        value_bits = inst.value.type.size_in_bits() if inst.value.type else 64
        operands = [
            self._value_operand("1", inst.value, value),
            TraceOperand(index="2", bits=value_bits, value=as_number(value),
                         is_register=False, name=pointer.symbol,
                         address=pointer.address),
        ]
        self._emit(frame, inst, operands)

    def _exec_gep(self, frame: Frame, inst: GEPInst) -> None:
        base = self._eval(frame, inst.base)
        index = self._eval(frame, inst.index)
        if not isinstance(base, PointerValue):
            raise InterpreterError(f"getelementptr on non-pointer at line {inst.line}")
        element_bits = inst.element_type.size_in_bits()
        pointer = PointerValue(base.address + int(as_number(index)) * element_bits // 8,
                               base.symbol, element_bits)
        assert inst.result is not None
        frame.regs[inst.result.rid] = pointer
        operands = [
            TraceOperand(index="1", bits=64, value=base.address, is_register=False,
                         name=base.symbol, address=base.address),
            self._value_operand("2", inst.index, index),
        ]
        self._emit(frame, inst, operands, self._register_result(inst, pointer))

    def _exec_bitcast(self, frame: Frame, inst: BitCastInst) -> None:
        value = self._eval(frame, inst.operands[0])
        result_type = inst.result.type if inst.result is not None else None
        if isinstance(value, PointerValue) and isinstance(result_type, PointerType):
            value = PointerValue(value.address, value.symbol,
                                 result_type.pointee.size_in_bits())
        assert inst.result is not None
        frame.regs[inst.result.rid] = value
        operands = [self._value_operand("1", inst.operands[0], value)]
        self._emit(frame, inst, operands, self._register_result(inst, value))

    def _exec_cast(self, frame: Frame, inst: CastInst) -> None:
        value = self._eval(frame, inst.operands[0])
        number = as_number(value)
        opcode = inst.opcode
        if opcode in (Opcode.SITOFP, Opcode.UITOFP, Opcode.FPEXT, Opcode.FPTRUNC):
            result: RuntimeValue = float(number)
        elif opcode in (Opcode.FPTOSI, Opcode.FPTOUI):
            result = int(number) if number >= 0 else -int(-number)
        else:  # integer width changes and pointer/int casts: value-preserving
            result = int(number) if isinstance(number, int) else number
        assert inst.result is not None
        frame.regs[inst.result.rid] = result
        operands = [self._value_operand("1", inst.operands[0], value)]
        self._emit(frame, inst, operands, self._register_result(inst, result))

    def _exec_cmp(self, frame: Frame, inst: CmpInst) -> None:
        lhs = as_number(self._eval(frame, inst.operands[0]))
        rhs = as_number(self._eval(frame, inst.operands[1]))
        predicate = inst.predicate
        outcome = {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "lt": lhs < rhs,
            "le": lhs <= rhs,
            "gt": lhs > rhs,
            "ge": lhs >= rhs,
        }[predicate]
        result = 1 if outcome else 0
        assert inst.result is not None
        frame.regs[inst.result.rid] = result
        operands = [self._value_operand("1", inst.operands[0], lhs),
                    self._value_operand("2", inst.operands[1], rhs)]
        self._emit(frame, inst, operands, self._register_result(inst, result))

    def _exec_binary(self, frame: Frame, inst: BinaryInst) -> None:
        lhs = as_number(self._eval(frame, inst.operands[0]))
        rhs = as_number(self._eval(frame, inst.operands[1]))
        result = self._compute_binary(inst.opcode, lhs, rhs, inst.line)
        assert inst.result is not None
        frame.regs[inst.result.rid] = result
        operands = [self._value_operand("1", inst.operands[0], lhs),
                    self._value_operand("2", inst.operands[1], rhs)]
        self._emit(frame, inst, operands, self._register_result(inst, result))

    @staticmethod
    def _compute_binary(opcode: Opcode, lhs: Union[int, float],
                        rhs: Union[int, float], line: int) -> Union[int, float]:
        try:
            if opcode == Opcode.ADD:
                return int(lhs) + int(rhs)
            if opcode == Opcode.FADD:
                return float(lhs) + float(rhs)
            if opcode == Opcode.SUB:
                return int(lhs) - int(rhs)
            if opcode == Opcode.FSUB:
                return float(lhs) - float(rhs)
            if opcode == Opcode.MUL:
                return int(lhs) * int(rhs)
            if opcode == Opcode.FMUL:
                return float(lhs) * float(rhs)
            if opcode in (Opcode.SDIV, Opcode.UDIV):
                quotient = int(lhs) / int(rhs)
                return math.trunc(quotient)
            if opcode == Opcode.FDIV:
                return float(lhs) / float(rhs)
            if opcode in (Opcode.SREM, Opcode.UREM):
                return int(lhs) - int(rhs) * math.trunc(int(lhs) / int(rhs))
            if opcode == Opcode.FREM:
                return math.fmod(float(lhs), float(rhs))
            if opcode == Opcode.AND:
                return 1 if (lhs != 0 and rhs != 0) else 0
            if opcode == Opcode.OR:
                return 1 if (lhs != 0 or rhs != 0) else 0
            if opcode == Opcode.XOR:
                return 1 if (lhs != 0) != (rhs != 0) else 0
        except ZeroDivisionError as exc:
            raise InterpreterError(f"division by zero at line {line}") from exc
        raise InterpreterError(f"unsupported binary opcode {opcode!r}")

    def _exec_print(self, frame: Frame, inst: PrintInst) -> None:
        values = [as_number(self._eval(frame, op)) for op in inst.operands]
        self.output.append(format_print_output(inst.labels, values))
        operands = [self._value_operand(str(i + 1), op, value)
                    for i, (op, value) in enumerate(zip(inst.operands, values))]
        self._emit(frame, inst, operands, callee="print")

    def _exec_call(self, frame: Frame, inst: CallInst) -> None:
        arg_values = [self._eval(frame, op) for op in inst.operands]
        operands = [self._value_operand(str(i + 1), op, value)
                    for i, (op, value) in enumerate(zip(inst.operands, arg_values))]

        if inst.is_builtin:
            numbers = [as_number(value) for value in arg_values]
            try:
                result = self.runtime.call(inst.callee, numbers)
            except RuntimeError_ as exc:
                raise InterpreterError(f"{exc} at line {inst.line}") from exc
            result_operand = None
            if inst.result is not None:
                frame.regs[inst.result.rid] = result
                result_operand = self._register_result(inst, result)
            self._emit(frame, inst, operands, result_operand, callee=inst.callee)
            return

        # User function: emit the Call record first (the callee's body follows
        # in the trace — paper Fig. 6b), including parameter name bindings.
        for position, param_name in enumerate(inst.param_names):
            value = arg_values[position] if position < len(arg_values) else 0
            address = value.address if isinstance(value, PointerValue) else None
            operands.append(TraceOperand(index=f"p{position + 1}", bits=64,
                                         value=as_number(value), is_register=False,
                                         name=param_name, address=address))
        self._emit(frame, inst, operands, callee=inst.callee)

        try:
            target = self.module.function(inst.callee)
        except KeyError as exc:
            raise InterpreterError(f"call to unknown function {inst.callee!r}") from exc
        returned = self._call_function(target, arg_values)
        if inst.result is not None:
            frame.regs[inst.result.rid] = returned if returned is not None else 0

    def _exec_branch(self, frame: Frame, inst: BranchInst) -> Tuple[str, object]:
        if inst.is_conditional:
            condition = as_number(self._eval(frame, inst.operands[0]))
            target = inst.targets[0] if condition != 0 else inst.targets[1]
            operands = [self._value_operand("1", inst.operands[0], condition)]
        else:
            target = inst.targets[0]
            operands = []
        self._emit(frame, inst, operands)
        return ("branch", target)

    def _exec_ret(self, frame: Frame, inst: RetInst) -> Tuple[str, object]:
        value: Optional[RuntimeValue] = None
        operands: List[TraceOperand] = []
        if inst.operands:
            value = self._eval(frame, inst.operands[0])
            operands.append(self._value_operand("1", inst.operands[0], value))
        self._emit(frame, inst, operands)
        return ("return", value)
