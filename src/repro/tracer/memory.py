"""Concrete memory model for the tracing interpreter.

Two segments are modelled:

* a **global segment** starting at ``0x1000_0000`` holding module globals —
  these addresses are stable for the whole execution and are published in the
  trace's globals preamble;
* a **stack segment** starting at ``0x7f00_0000_0000`` growing upwards, with
  one contiguous span per ``Alloca``.  Frames release their span on return,
  so locals of different calls may legitimately reuse addresses — never
  overlapping live globals or the main function's frame, which is what makes
  the paper's address-matching disambiguation (Challenge 2) sound.

The memory also keeps the statistics needed by the Table IV storage study:
total global footprint and peak stack footprint (the BLCR-style
whole-process checkpoint size is derived from them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.tracer.values import RuntimeValue


class MemoryError_(Exception):
    """Raised on invalid memory operations (e.g. division of segments)."""


GLOBAL_BASE = 0x1000_0000
STACK_BASE = 0x7F00_0000_0000
_ALIGNMENT = 8


def _align(value: int, alignment: int = _ALIGNMENT) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class Allocation:
    """Metadata describing one allocated variable."""

    name: str
    address: int
    size_bytes: int
    element_bits: int
    count: int
    is_array: bool
    segment: str  # "global" | "stack"
    function: str = ""

    @property
    def element_bytes(self) -> int:
        return self.element_bits // 8

    @property
    def end_address(self) -> int:
        return self.address + self.size_bytes

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end_address

    def element_addresses(self) -> List[int]:
        return [self.address + i * self.element_bytes for i in range(self.count)]


class Memory:
    """Byte-addressed (element-granular) memory with allocation tracking."""

    def __init__(self) -> None:
        self._cells: Dict[int, RuntimeValue] = {}
        self._global_cursor = GLOBAL_BASE
        self._stack_pointer = STACK_BASE
        self._peak_stack = STACK_BASE
        self.global_allocations: List[Allocation] = []
        self.stack_allocations: List[Allocation] = []

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate_global(self, name: str, element_bits: int, count: int,
                        is_array: bool) -> Allocation:
        size = _align(count * (element_bits // 8))
        allocation = Allocation(name=name, address=self._global_cursor,
                                size_bytes=size, element_bits=element_bits,
                                count=count, is_array=is_array,
                                segment="global")
        self._global_cursor += size
        self.global_allocations.append(allocation)
        return allocation

    def allocate_stack(self, name: str, element_bits: int, count: int,
                       is_array: bool, function: str) -> Allocation:
        size = _align(count * (element_bits // 8))
        allocation = Allocation(name=name, address=self._stack_pointer,
                                size_bytes=size, element_bits=element_bits,
                                count=count, is_array=is_array,
                                segment="stack", function=function)
        self._stack_pointer += size
        self._peak_stack = max(self._peak_stack, self._stack_pointer)
        self.stack_allocations.append(allocation)
        return allocation

    def stack_mark(self) -> int:
        """Return the current stack pointer (to be restored on frame exit)."""
        return self._stack_pointer

    def stack_release(self, mark: int) -> None:
        if mark > self._stack_pointer:
            raise MemoryError_("cannot release the stack upwards")
        self._stack_pointer = mark

    # ------------------------------------------------------------------ #
    # Loads and stores
    # ------------------------------------------------------------------ #
    def load(self, address: int, default: RuntimeValue = 0) -> RuntimeValue:
        return self._cells.get(address, default)

    def store(self, address: int, value: RuntimeValue) -> None:
        self._cells[address] = value

    def read_block(self, allocation: Allocation,
                   default: RuntimeValue = 0) -> List[RuntimeValue]:
        return [self.load(addr, default) for addr in allocation.element_addresses()]

    def write_block(self, allocation: Allocation,
                    values: List[RuntimeValue]) -> None:
        addresses = allocation.element_addresses()
        if len(values) != len(addresses):
            raise MemoryError_(
                f"block size mismatch for {allocation.name!r}: "
                f"{len(values)} values for {len(addresses)} elements")
        for address, value in zip(addresses, values):
            self.store(address, value)

    # ------------------------------------------------------------------ #
    # Statistics (Table IV)
    # ------------------------------------------------------------------ #
    @property
    def total_global_bytes(self) -> int:
        return sum(alloc.size_bytes for alloc in self.global_allocations)

    @property
    def peak_stack_bytes(self) -> int:
        return self._peak_stack - STACK_BASE

    @property
    def process_image_bytes(self) -> int:
        """Size of the whole simulated process image (globals + peak stack)."""
        return self.total_global_bytes + self.peak_stack_bytes

    def find_allocation(self, address: int) -> Optional[Allocation]:
        for allocation in self.global_allocations:
            if allocation.contains(address):
                return allocation
        for allocation in reversed(self.stack_allocations):
            if allocation.contains(address):
                return allocation
        return None
