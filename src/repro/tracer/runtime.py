"""Runtime builtins available to mini-C programs.

All builtins are deterministic:

* math functions delegate to :mod:`math`;
* ``rand`` / ``randf`` use the library's LCG (:class:`DeterministicRNG`) so
  EP/IS/HACC style benchmarks produce identical traces on every run;
* ``clock`` returns a *virtual* monotonically increasing time (one tick per
  call) — enough to express the timer-accumulation (Write-After-Read)
  patterns of HPCCG/CoMD/miniAMR without making traces non-deterministic.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Union

from repro.util.rng import DeterministicRNG

Number = Union[int, float]


class RuntimeError_(Exception):
    """Raised when a builtin is misused at run time."""


class Runtime:
    """Holds builtin implementations plus the deterministic RNG/clock state."""

    def __init__(self, seed: int = 314159) -> None:
        self.rng = DeterministicRNG(seed)
        self._clock_ticks = 0
        self._builtins: Dict[str, Callable[..., Number]] = {
            "sqrt": self._sqrt,
            "pow": self._pow,
            "fabs": lambda x: abs(float(x)),
            "exp": lambda x: math.exp(float(x)),
            "log": self._log,
            "sin": lambda x: math.sin(float(x)),
            "cos": lambda x: math.cos(float(x)),
            "floor": lambda x: math.floor(float(x)),
            "fmin": lambda a, b: min(float(a), float(b)),
            "fmax": lambda a, b: max(float(a), float(b)),
            "abs": lambda x: abs(int(x)),
            "rand": self._rand,
            "randf": self._randf,
            "clock": self._clock,
        }

    # ------------------------------------------------------------------ #
    # Builtin implementations
    # ------------------------------------------------------------------ #
    @staticmethod
    def _sqrt(x: Number) -> float:
        value = float(x)
        if value < 0:
            raise RuntimeError_(f"sqrt of negative value {value}")
        return math.sqrt(value)

    @staticmethod
    def _pow(base: Number, exponent: Number) -> float:
        return math.pow(float(base), float(exponent))

    @staticmethod
    def _log(x: Number) -> float:
        value = float(x)
        if value <= 0:
            raise RuntimeError_(f"log of non-positive value {value}")
        return math.log(value)

    def _rand(self) -> int:
        return self.rng.next_int(1 << 31)

    def _randf(self) -> float:
        return self.rng.next_double()

    def _clock(self) -> float:
        self._clock_ticks += 1
        return float(self._clock_ticks)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def call(self, name: str, args: Sequence[Number]) -> Number:
        try:
            impl = self._builtins[name]
        except KeyError as exc:
            raise RuntimeError_(f"unknown builtin {name!r}") from exc
        try:
            return impl(*args)
        except ZeroDivisionError as exc:
            raise RuntimeError_(f"division by zero in builtin {name!r}") from exc

    def known(self, name: str) -> bool:
        return name in self._builtins


def format_print_output(labels: List, values: List[Number]) -> str:
    """Render the output of a ``print`` statement deterministically.

    Integers print as-is; doubles with 10 significant digits — identical
    formatting on the failure-free and the restarted run is what makes the
    output comparison of the restart validation meaningful.
    """
    parts: List[str] = []
    for index, value in enumerate(values):
        label = labels[index] if index < len(labels) else None
        if label:
            parts.append(str(label))
        if isinstance(value, float):
            parts.append(f"{value:.10g}")
        else:
            parts.append(str(value))
    if len(labels) > len(values):
        for label in labels[len(values):]:
            if label:
                parts.append(str(label))
    return " ".join(parts)
