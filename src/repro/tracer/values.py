"""Runtime value representation used by the interpreter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class PointerValue:
    """A runtime pointer: concrete address plus the symbol it was derived from.

    The symbol is the *IR-level* name the pointer currently travels under —
    e.g. inside ``foo(int *p, ...)`` an element pointer derived from the
    parameter is reported as ``p`` even though its address lies inside the
    caller's array ``a``, exactly as LLVM-Tracer reports it (paper Fig. 1).
    The argument/parameter correlation is recovered by the analysis from the
    ``Call`` records (paper Fig. 6b) and from address-interval matching.
    """

    address: int
    symbol: str
    element_bits: int = 64

    def offset_by(self, elements: int, element_bits: int) -> "PointerValue":
        byte_offset = elements * (element_bits // 8)
        return PointerValue(address=self.address + byte_offset,
                            symbol=self.symbol,
                            element_bits=element_bits)

    def with_symbol(self, symbol: str) -> "PointerValue":
        return PointerValue(address=self.address, symbol=symbol,
                            element_bits=self.element_bits)


#: Anything a virtual register can hold at run time.
RuntimeValue = Union[int, float, PointerValue]


def as_number(value: RuntimeValue) -> Union[int, float]:
    """Project a runtime value to a number (pointers become their address)."""
    if isinstance(value, PointerValue):
        return value.address
    return value
