"""Utility helpers shared across the AutoCheck reproduction.

The utilities are intentionally small and dependency-free: deterministic
pseudo-random number generation (so traces are reproducible run to run),
wall-clock timing helpers used by the efficiency study (Table III), human
readable byte/size formatting used by the storage study (Table IV), and a
minimal table renderer used by the experiment harnesses.
"""

from repro.util.timing import Stopwatch, Timer, TimingBreakdown
from repro.util.rng import DeterministicRNG
from repro.util.formatting import format_bytes, format_seconds, render_table
from repro.util.logging import get_logger

__all__ = [
    "Stopwatch",
    "Timer",
    "TimingBreakdown",
    "DeterministicRNG",
    "format_bytes",
    "format_seconds",
    "render_table",
    "get_logger",
]
