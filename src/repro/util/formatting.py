"""Formatting helpers used by the experiment harnesses.

The experiment scripts print tables shaped like the paper's Table II/III/IV;
these helpers keep the rendering consistent and dependency free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB"]


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with the most natural unit (1024-based).

    >>> format_bytes(2048)
    '2.00 KB'
    """
    value = float(num_bytes)
    for unit in _BYTE_UNITS:
        if abs(value) < 1024.0 or unit == _BYTE_UNITS[-1]:
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TB"


def format_seconds(seconds: float) -> str:
    """Render a duration compactly (matching the paper's second-level units)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.2f} min"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with left-aligned, width-padded columns."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            if idx >= len(widths):
                widths.extend([0] * (idx + 1 - len(widths)))
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[idx]) for idx, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    sep = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines = [fmt_row(list(headers)), sep]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
