"""Minimal logging setup shared by the library and the experiment harnesses."""

from __future__ import annotations

import logging
import os

_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a configured logger below the ``repro`` namespace.

    The verbosity is controlled by the ``REPRO_LOG_LEVEL`` environment
    variable (default ``WARNING``) so tests and benchmarks stay quiet unless
    the user explicitly asks for diagnostics.
    """
    global _CONFIGURED
    if not _CONFIGURED:
        level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
        level = getattr(logging, level_name, logging.WARNING)
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root = logging.getLogger("repro")
        root.setLevel(level)
        if not root.handlers:
            root.addHandler(handler)
        _CONFIGURED = True
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
