"""Deterministic pseudo-random number generation for the mini benchmarks.

Several of the paper's benchmarks (EP, IS, HACC) rely on pseudo-random input
data.  The interpreter exposes a ``rand()`` builtin backed by this linear
congruential generator so that traces, checkpoints and restart validations
are bit-for-bit reproducible across runs and platforms.
"""

from __future__ import annotations


class DeterministicRNG:
    """A 64-bit linear congruential generator (Knuth MMIX constants)."""

    MULTIPLIER = 6364136223846793005
    INCREMENT = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int = 314159) -> None:
        self._state = seed & self.MASK
        self._seed = seed

    @property
    def seed(self) -> int:
        return self._seed

    def reseed(self, seed: int) -> None:
        self._seed = seed
        self._state = seed & self.MASK

    def next_uint(self) -> int:
        """Return the next raw 64-bit state."""
        self._state = (self._state * self.MULTIPLIER + self.INCREMENT) & self.MASK
        return self._state

    def next_int(self, bound: int) -> int:
        """Return an integer uniformly distributed in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return (self.next_uint() >> 16) % bound

    def next_double(self) -> float:
        """Return a float uniformly distributed in ``[0, 1)``."""
        return (self.next_uint() >> 11) / float(1 << 53)

    def fork(self, salt: int) -> "DeterministicRNG":
        """Create an independent generator derived from this one."""
        return DeterministicRNG((self._seed * 1000003 + salt) & self.MASK)
