"""Timing helpers for the efficiency study (paper Table III).

The paper reports the analysis cost of AutoCheck broken down into three
stages (pre-processing, dependency analysis, identification of variables),
with and without the OpenMP pre-processing optimization.  :class:`Stopwatch`
provides the low-level measurement, :class:`TimingBreakdown` accumulates the
named stages for a single pipeline run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


class Stopwatch:
    """A resettable stopwatch based on :func:`time.perf_counter`."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running


class Timer:
    """Context manager measuring a single interval.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingBreakdown:
    """Named stage timings for one AutoCheck pipeline run.

    Mirrors the columns of paper Table III: the multi-pass pipeline records
    ``preprocessing``, ``dependency_analysis`` and ``identify_variables``;
    the fused pipeline records ``preprocessing``, ``fused_analysis`` and
    ``identify_variables``.  ``total`` is the sum of all recorded stages.

    Stages that walk trace records can additionally record how many records
    they processed (:meth:`add_count`), which makes per-stage throughput
    (:meth:`records_per_second`) comparable across pipeline shapes — the
    number the efficiency study (``table3.py``) reports to show the
    single-pass speedup.
    """

    stages: Dict[str, float] = field(default_factory=dict)
    #: records processed per stage (only stages that walk records)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def add_count(self, name: str, records: int) -> None:
        """Record that stage ``name`` processed ``records`` trace records."""
        self.counts[name] = self.counts.get(name, 0) + records

    def get(self, name: str) -> float:
        return self.stages.get(name, 0.0)

    def get_count(self, name: str) -> int:
        return self.counts.get(name, 0)

    def records_per_second(self, name: str) -> Optional[float]:
        """Throughput of stage ``name``; None when it has no record count
        or no measurable elapsed time."""
        count = self.counts.get(name)
        seconds = self.stages.get(name, 0.0)
        if not count or seconds <= 0.0:
            return None
        return count / seconds

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        merged = TimingBreakdown(dict(self.stages), dict(self.counts))
        for name, seconds in other.stages.items():
            merged.add(name, seconds)
        for name, count in other.counts.items():
            merged.add_count(name, count)
        return merged

    def as_dict(self) -> Dict[str, float]:
        out = dict(self.stages)
        out["total"] = self.total
        return out
