"""Shared fixtures for the test suite.

Expensive artefacts (tracing + analysing the paper's example program and a
couple of benchmarks) are produced once per session and reused across test
modules.
"""

from __future__ import annotations

import pytest

from repro.apps import EXAMPLE_APP, get_app
from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.pipeline import AutoCheck
from repro.core.preprocessing import identify_mli_variables
from repro.ir.opcodes import Opcode
from repro.trace.records import TraceOperand, TraceRecord
from repro.tracer.driver import run_and_trace


# --------------------------------------------------------------------------- #
# Synthetic trace-record factories shared by the address-resolution and
# dependency tests (import from conftest: `from conftest import make_record`).
# --------------------------------------------------------------------------- #
def make_operand(index, name="", *, address=None, is_register=False, bits=32,
                 value=0):
    return TraceOperand(index=index, bits=bits, value=value,
                        is_register=is_register, name=name, address=address)


def make_record(dyn_id, opcode, function, line, operands=(), result=None,
                callee=""):
    opcode = Opcode(opcode)
    return TraceRecord(
        dyn_id=dyn_id, opcode=int(opcode), opcode_name=opcode.mnemonic,
        function=function, line=line, column=0, bb_label=0, bb_id="0:0",
        operands=list(operands), result=result, callee=callee)


def make_alloca_record(name, address, *, count=1, bits=32, function="main",
                       dyn_id=1, line=0):
    return make_record(
        dyn_id, Opcode.ALLOCA, function, line,
        operands=[make_operand("1", "count", value=count)],
        result=make_operand("r", name, address=address, bits=bits))


@pytest.fixture(scope="session")
def example_source() -> str:
    return EXAMPLE_APP.source()


@pytest.fixture(scope="session")
def example_spec(example_source) -> MainLoopSpec:
    return EXAMPLE_APP.main_loop(example_source)


@pytest.fixture(scope="session")
def example_module(example_source):
    return compile_source(example_source, module_name="example")


@pytest.fixture(scope="session")
def example_trace_and_result(example_module):
    return run_and_trace(example_module, module_name="example")


@pytest.fixture(scope="session")
def example_trace(example_trace_and_result):
    return example_trace_and_result[0]


@pytest.fixture(scope="session")
def example_execution(example_trace_and_result):
    return example_trace_and_result[1]


@pytest.fixture(scope="session")
def example_preprocessing(example_trace, example_spec):
    return identify_mli_variables(example_trace, example_spec)


@pytest.fixture(scope="session")
def example_report(example_trace, example_spec, example_module):
    config = AutoCheckConfig(main_loop=example_spec)
    return AutoCheck(config, trace=example_trace, module=example_module).run()


@pytest.fixture(scope="session")
def mg_analysis():
    """A small benchmark analysed end to end (used by checkpoint tests)."""
    from repro.experiments.common import analyze_app

    return analyze_app(get_app("mg"), params={"n": 24, "iters": 5})


SIMPLE_LOOP_SOURCE = """\
int total;

int accumulate(int *data, int count) {
    int partial = 0;
    for (int i = 0; i < count; ++i) {
        partial = partial + data[i];
    }
    return partial;
}

int main() {
    int data[6];
    int limit = 4;
    total = 0;
    for (int i = 0; i < 6; ++i) {
        data[i] = i * 3;
    }
    for (int it = 0; it < limit; ++it) {
        data[it] = data[it] + 1;
        total = total + accumulate(data, 6);
    }
    print("total", total);
    return 0;
}
"""


@pytest.fixture(scope="session")
def simple_loop_source() -> str:
    return SIMPLE_LOOP_SOURCE


@pytest.fixture(scope="session")
def simple_loop_module(simple_loop_source):
    return compile_source(simple_loop_source, module_name="simple_loop")


@pytest.fixture(scope="session")
def simple_loop_trace(simple_loop_module):
    trace, result = run_and_trace(simple_loop_module, module_name="simple_loop")
    assert not result.failed
    return trace


# --------------------------------------------------------------------------- #
# Decode counting: intercept every path that turns trace bytes into records.
# Shared by the store suite (warm = cold, zero decodes) and the serve
# daemon's black-box suite (N coalesced requests = one engine walk).
# --------------------------------------------------------------------------- #
@pytest.fixture()
def decode_counter(monkeypatch):
    """Count decoded trace records, wherever the decode happens.

    Binary traces funnel every record through ``binio._decode_record``
    (materializing read, streaming iterator, header scan's full decodes)
    or through the columnar reader's bulk block decode, which counts once
    per record in the block; text traces funnel through
    ``textio.iter_parsed_records``.  All are looked up as module/class
    attributes at call time, so patching them intercepts every path.
    """
    counts = {"records": 0}

    import repro.trace.binio as binio_module
    import repro.trace.columnar as columnar_module
    import repro.trace.textio as textio_module

    real_decode = binio_module._decode_record
    real_iter_parsed = textio_module.iter_parsed_records
    real_iter_blocks = columnar_module.TraceColumnarReader.iter_blocks

    def counting_decode(buf, position, strings):
        counts["records"] += 1
        return real_decode(buf, position, strings)

    def counting_iter_parsed(lines):
        for record in real_iter_parsed(lines):
            counts["records"] += 1
            yield record

    def counting_iter_blocks(self, *args, **kwargs):
        for block in real_iter_blocks(self, *args, **kwargs):
            counts["records"] += block.count
            yield block

    monkeypatch.setattr(binio_module, "_decode_record", counting_decode)
    monkeypatch.setattr(textio_module, "iter_parsed_records",
                        counting_iter_parsed)
    monkeypatch.setattr(columnar_module.TraceColumnarReader, "iter_blocks",
                        counting_iter_blocks)
    return counts
