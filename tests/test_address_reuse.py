"""Stack-address-reuse shadowing: accesses attribute to the *live* allocation.

Successive calls re-use stack addresses with different layouts (paper
Challenge 2, Sec. V-C).  These tests build a trace where ``helper1`` allocates
an i32 array and returns, then ``helper2`` re-uses the same stack base for an
i64 array and touches a byte that sits on the *dead* array's element grid but
in the *live* array's interior.

The old dict-first ``resolve()`` consulted the per-element-address index
before the last-registered-wins interval scan, so that byte resolved to the
dead i32 array — these tests fail against it and pass with the bisect-indexed
interval store (plus scope retirement on ``Ret``).
"""

from __future__ import annotations

import pytest
from conftest import make_alloca_record, make_operand, make_record as record

from repro.core.config import AutoCheckConfig, MainLoopSpec
from repro.core.dependency import DependencyAnalysis
from repro.core.pipeline import AutoCheck
from repro.core.preprocessing import identify_mli_variables
from repro.ir.opcodes import Opcode
from repro.trace.records import Trace, TraceOperand


def mem(index, name, address, bits=32, value=0):
    return make_operand(index, name, address=address, bits=bits, value=value)


def reg(index, name, bits=32, value=0, address=None):
    return make_operand(index, name, address=address, bits=bits, value=value,
                        is_register=True)


def alloca(dyn_id, function, line, name, address, count, bits):
    return make_alloca_record(name, address, count=count, bits=bits,
                              function=function, dyn_id=dyn_id, line=line)


SPEC = MainLoopSpec(function="main", start_line=10, end_line=20)

ACC = 0x1000          # main's accumulator
FRAME = 0x7F00        # stack base reused by helper1 and helper2


@pytest.fixture()
def reuse_trace():
    """main's loop calls helper1 (i32 scratch[4] @FRAME, returns), then main
    probes a dead-frame address, then helper2 (i64 window[2] @FRAME) reads
    the byte FRAME+4: an element boundary of the dead scratch, interior of
    the live window."""
    records = [
        # before the loop: alloca + touch main's accumulator
        alloca(1, "main", 2, "acc", ACC, count=1, bits=32),
        record(2, Opcode.STORE, "main", 3,
               operands=[TraceOperand(index="1", bits=32, value=0,
                                      is_register=False, name=""),
                         mem("2", "acc", ACC)]),
        # loop extent starts: read acc on a loop line of main
        record(3, Opcode.LOAD, "main", 10, operands=[mem("1", "acc", ACC)],
               result=reg("r", "1")),
        # helper1: i32 scratch[4] at FRAME (element grid FRAME+0/4/8/12)
        record(4, Opcode.CALL, "main", 11,
               operands=[mem("p1", "n", None)], callee="helper1"),
        alloca(5, "helper1", 30, "scratch", FRAME, count=4, bits=32),
        record(6, Opcode.STORE, "helper1", 31,
               operands=[TraceOperand(index="1", bits=32, value=7,
                                      is_register=False, name=""),
                         mem("2", "scratch", FRAME + 4)]),
        record(7, Opcode.RET, "helper1", 32),
        # main probes FRAME+12 between the calls: the frame is dead, the
        # access must NOT be absorbed by helper1's retired scratch
        record(8, Opcode.LOAD, "main", 12,
               operands=[mem("1", "q", FRAME + 12)], result=reg("r", "9")),
        # helper2: i64 window[2] at the same base (element grid FRAME+0/8)
        record(9, Opcode.CALL, "main", 13,
               operands=[mem("p1", "n", None)], callee="helper2"),
        alloca(10, "helper2", 40, "window", FRAME, count=2, bits=64),
        # THE probe: FRAME+4 — stale scratch element #1, live window interior
        record(11, Opcode.LOAD, "helper2", 41,
               operands=[mem("1", "ptr", FRAME + 4, bits=64)],
               result=reg("r", "5", bits=64)),
        record(12, Opcode.RET, "helper2", 42),
        # loop extent ends: write acc on a loop line of main
        record(13, Opcode.STORE, "main", 20,
               operands=[reg("1", "1"), mem("2", "acc", ACC)]),
        # after the loop: read acc (keeps the region split non-trivial)
        record(14, Opcode.LOAD, "main", 25, operands=[mem("1", "acc", ACC)],
               result=reg("r", "7")),
    ]
    return Trace(module_name="reuse", records=records)


class TestAddressReuseShadowing:
    def test_access_attributes_to_live_allocation(self, reuse_trace):
        preprocessing = identify_mli_variables(reuse_trace, SPEC)
        dependency = DependencyAnalysis(preprocessing).run()
        ddg = dependency.complete_ddg

        window_key = f"window@{FRAME:#x}"
        scratch_key = f"scratch@{FRAME:#x}"
        load_reg = "helper2%5"
        assert ddg.has_node(window_key)
        # the load in helper2 depends on the live window, and on nothing else
        assert ddg.parents_of(load_reg) == {window_key}
        # the dead scratch never feeds anything after its frame exits
        if ddg.has_node(scratch_key):
            assert load_reg not in ddg.children_of(scratch_key)

    def test_dead_frame_does_not_absorb_interleaved_accesses(self, reuse_trace):
        """Between helper1's return and helper2's call the frame is dead:
        main's probe of FRAME+12 must fall back to a named local node, not
        resolve into helper1's retired scratch."""
        preprocessing = identify_mli_variables(reuse_trace, SPEC)
        dependency = DependencyAnalysis(preprocessing).run()
        ddg = dependency.complete_ddg
        assert ddg.parents_of("main%9") == {"main:q"}

    def test_zero_parameter_callee_frame_is_retired(self):
        """A user function with no parameters emits a Call record with no
        ``p`` operands — indistinguishable from a builtin at the Call itself.
        Its traced body (the next record executes in the callee) must still
        open a scope, so its frame is retired on Ret like any other."""
        records = [
            alloca(1, "main", 2, "acc", ACC, count=1, bits=32),
            record(2, Opcode.STORE, "main", 3,
                   operands=[TraceOperand(index="1", bits=32, value=0,
                                          is_register=False, name=""),
                             mem("2", "acc", ACC)]),
            record(3, Opcode.LOAD, "main", 10,
                   operands=[mem("1", "acc", ACC)], result=reg("r", "1")),
            # zero-parameter traced call: no operands at all
            record(4, Opcode.CALL, "main", 11, callee="init"),
            alloca(5, "init", 30, "tmp", FRAME, count=4, bits=32),
            record(6, Opcode.RET, "init", 31),
            # main probes the dead frame: must not resolve to tmp
            record(7, Opcode.LOAD, "main", 12,
                   operands=[mem("1", "q", FRAME + 4)], result=reg("r", "9")),
            record(8, Opcode.STORE, "main", 20,
                   operands=[reg("1", "1"), mem("2", "acc", ACC)]),
        ]
        trace = Trace(module_name="zeroparam", records=records)
        preprocessing = identify_mli_variables(trace, SPEC)
        dependency = DependencyAnalysis(preprocessing).run()
        assert dependency.complete_ddg.parents_of("main%9") == {"main:q"}
        assert dependency.variable_map.resolve(FRAME) is None
        assert dependency.variable_map.resolve(FRAME + 4) is None
        assert dependency.variable_map.open_scope_count == 0

    def test_builtin_call_opens_no_scope(self):
        """A builtin Call (no traced body follows) must not leave a dangling
        open scope that would swallow the caller's later allocations."""
        records = [
            alloca(1, "main", 2, "acc", ACC, count=1, bits=32),
            record(2, Opcode.STORE, "main", 3,
                   operands=[TraceOperand(index="1", bits=32, value=0,
                                          is_register=False, name=""),
                             mem("2", "acc", ACC)]),
            record(3, Opcode.LOAD, "main", 10,
                   operands=[mem("1", "acc", ACC)], result=reg("r", "1")),
            record(4, Opcode.CALL, "main", 11,
                   operands=[reg("1", "1")], result=reg("r", "2"),
                   callee="sqrt"),
            # next record stays in main: sqrt's call opened nothing
            record(5, Opcode.STORE, "main", 20,
                   operands=[reg("1", "2"), mem("2", "acc", ACC)]),
        ]
        trace = Trace(module_name="builtin", records=records)
        preprocessing = identify_mli_variables(trace, SPEC)
        dependency = DependencyAnalysis(preprocessing).run()
        assert dependency.variable_map.open_scope_count == 0
        assert dependency.variable_map.resolve(ACC).name == "acc"

    def test_final_map_retires_both_frames(self, reuse_trace):
        preprocessing = identify_mli_variables(reuse_trace, SPEC)
        dependency = DependencyAnalysis(preprocessing).run()
        varmap = dependency.variable_map
        # both helper frames have returned: the reused base resolves to
        # nothing, while main's accumulator is still live
        assert varmap.resolve(FRAME) is None
        assert varmap.resolve(FRAME + 4) is None
        assert varmap.resolve(ACC).name == "acc"
        # history still knows both allocations (reporting view)
        assert varmap.latest_by_name("scratch") is not None
        assert varmap.latest_by_name("window") is not None


class TestBigarrayPipelineEquivalence:
    """The million-element synthetic app: streaming and materialized
    pipelines agree, through the interval store."""

    @pytest.fixture(scope="class")
    def bigarray_trace_path(self, tmp_path_factory):
        from repro.apps import get_app
        from repro.codegen.lowering import compile_source
        from repro.tracer.driver import trace_to_file

        app = get_app("bigarray")
        module = compile_source(app.source(), module_name="bigarray")
        path = str(tmp_path_factory.mktemp("bigarray") / "bigarray.btrace")
        trace_to_file(module, path, fmt="binary")
        return path

    def test_streaming_report_identical(self, bigarray_trace_path):
        from repro.apps import get_app

        app = get_app("bigarray")
        spec = app.main_loop(app.source())
        materialized = AutoCheck(AutoCheckConfig(main_loop=spec),
                                 trace_path=bigarray_trace_path).run()
        streaming = AutoCheck(
            AutoCheckConfig(main_loop=spec, streaming_preprocessing=True),
            trace_path=bigarray_trace_path).run()
        assert streaming.mli_variable_names == materialized.mli_variable_names
        assert [(v.name, v.dependency) for v in streaming.critical_variables] \
            == [(v.name, v.dependency) for v in materialized.critical_variables]
        assert streaming.dependency_string() == materialized.dependency_string()

    def test_expected_classification(self, bigarray_trace_path):
        from repro.apps import get_app

        app = get_app("bigarray")
        spec = app.main_loop(app.source())
        report = AutoCheck(AutoCheckConfig(main_loop=spec),
                           trace_path=bigarray_trace_path).run()
        got = {v.name: v.dependency.value for v in report.critical_variables}
        assert got == app.expected_critical
