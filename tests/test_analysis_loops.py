"""Unit tests for CFG / dominators / natural loops / induction variables."""

import pytest

from repro.analysis import (
    build_cfg,
    compute_dominators,
    find_induction_variable,
    find_loops,
    find_main_loop,
    main_loop_induction,
)
from repro.apps import find_mclr, get_app
from repro.codegen import compile_source


NESTED_LOOP_SOURCE = """\
int main() {
    int total = 0;
    for (int i = 0; i < 3; ++i) {
        total = total + 1;
    }
    for (int outer = 0; outer < 5; ++outer) {
        for (int inner = 0; inner < 4; ++inner) {
            total = total + inner;
        }
        total = total + outer;
    }
    print(total);
    return 0;
}
"""

WHILE_LOOP_SOURCE = """\
int main() {
    int done = 0;
    int ts = 1;
    int work = 0;
    while (!done && ts <= 6) {
        work = work + ts;
        ts = ts + 1;
        if (ts > 6) {
            done = 1;
        }
    }
    print(work);
    return 0;
}
"""


@pytest.fixture(scope="module")
def nested_main():
    return compile_source(NESTED_LOOP_SOURCE).function("main")


@pytest.fixture(scope="module")
def while_main():
    return compile_source(WHILE_LOOP_SOURCE).function("main")


class TestCFG:
    def test_every_block_has_successor_entry(self, nested_main):
        cfg = build_cfg(nested_main)
        assert set(cfg.successors) == set(nested_main.blocks)

    def test_entry_has_no_predecessors(self, nested_main):
        cfg = build_cfg(nested_main)
        assert cfg.predecessors[cfg.entry] == []

    def test_predecessors_consistent_with_successors(self, nested_main):
        cfg = build_cfg(nested_main)
        for block, successors in cfg.successors.items():
            for succ in successors:
                assert block in cfg.predecessors[succ]

    def test_reverse_postorder_starts_at_entry(self, nested_main):
        cfg = build_cfg(nested_main)
        order = cfg.reverse_postorder()
        assert order[0] is cfg.entry
        assert len(order) == len(cfg.reachable_blocks())

    def test_all_blocks_reachable_in_generated_code(self, nested_main):
        cfg = build_cfg(nested_main)
        assert cfg.reachable_blocks() == set(nested_main.blocks)


class TestDominators:
    def test_entry_dominates_everything(self, nested_main):
        cfg = build_cfg(nested_main)
        dom = compute_dominators(cfg)
        for block in cfg.reachable_blocks():
            assert dom.dominates(cfg.entry, block)

    def test_every_block_dominates_itself(self, nested_main):
        cfg = build_cfg(nested_main)
        dom = compute_dominators(cfg)
        for block in cfg.reachable_blocks():
            assert dom.dominates(block, block)
            assert not dom.strictly_dominates(block, block)

    def test_idom_is_strict_dominator(self, nested_main):
        cfg = build_cfg(nested_main)
        dom = compute_dominators(cfg)
        for block, idom in dom.idom.items():
            if idom is not None:
                assert dom.strictly_dominates(idom, block)

    def test_entry_has_no_idom(self, nested_main):
        cfg = build_cfg(nested_main)
        dom = compute_dominators(cfg)
        assert dom.idom[cfg.entry] is None


class TestLoops:
    def test_three_loops_found(self, nested_main):
        info = find_loops(nested_main)
        assert len(info.loops) == 3

    def test_nesting_depths(self, nested_main):
        info = find_loops(nested_main)
        depths = sorted(loop.depth for loop in info.loops)
        assert depths == [1, 1, 2]

    def test_outermost_loops(self, nested_main):
        info = find_loops(nested_main)
        assert len(info.outermost()) == 2

    def test_inner_loop_parent_is_outer(self, nested_main):
        info = find_loops(nested_main)
        inner = [loop for loop in info.loops if loop.depth == 2][0]
        assert inner.parent is not None
        assert inner in inner.parent.children
        assert inner.blocks <= inner.parent.blocks

    def test_header_lines_match_source(self, nested_main):
        info = find_loops(nested_main)
        header_lines = sorted(loop.header_line for loop in info.loops)
        assert header_lines == [3, 6, 7]

    def test_loop_line_range_covers_body(self, nested_main):
        info = find_loops(nested_main)
        outer = [loop for loop in info.loops if loop.header_line == 6][0]
        assert 9 in outer.line_range()

    def test_while_loop_detected(self, while_main):
        info = find_loops(while_main)
        assert len(info.loops) == 1
        assert info.loops[0].header_line == 5


class TestMainLoopSelection:
    def test_selects_loop_in_line_range(self, nested_main):
        loop = find_main_loop(nested_main, 6, 12)
        assert loop is not None
        assert loop.header_line == 6

    def test_selects_outermost_among_nested(self, nested_main):
        loop = find_main_loop(nested_main, 6, 12)
        assert loop.depth == 1

    def test_returns_none_outside_any_loop(self, nested_main):
        assert find_main_loop(nested_main, 13, 14) is None


class TestInductionVariables:
    def test_simple_for_loop_induction(self, nested_main):
        loop = find_main_loop(nested_main, 3, 5)
        induction = find_induction_variable(nested_main, loop)
        assert induction is not None
        assert induction.name == "i"

    def test_outer_loop_induction(self, nested_main):
        induction = main_loop_induction(nested_main, 6, 12)
        assert induction.name == "outer"

    def test_while_loop_induction_through_logical_and(self, while_main):
        induction = main_loop_induction(while_main, 5, 11)
        assert induction is not None
        assert induction.name == "ts"

    @pytest.mark.parametrize("app_name,expected", [
        ("himeno", "n"),
        ("cg", "it"),
        ("ep", "k"),
        ("is", "iteration"),
        ("lu", "istep"),
        ("hacc", "step"),
    ])
    def test_benchmark_induction_variables(self, app_name, expected):
        app = get_app(app_name)
        source = app.source()
        module = compile_source(source, module_name=app_name)
        start, end = find_mclr(source)
        induction = main_loop_induction(module.function("main"), start, end)
        assert induction is not None
        assert induction.name == expected
