"""Integration: AutoCheck reproduces paper Table II on every mini benchmark.

This is the headline reproduction test — for each of the 14 benchmarks the
detected set of (variable, dependency type) pairs must equal the paper's
Table II row (on the scaled mini-app, with the documented miniAMR deviation
encoded in its registry entry).
"""

import pytest

from repro.apps import all_apps, get_app
from repro.experiments.common import analyze_app


@pytest.mark.parametrize("app", all_apps(), ids=lambda app: app.name)
def test_detected_variables_match_table2(app):
    analysis = analyze_app(app)
    got = {v.name: v.dependency.value for v in analysis.report.critical_variables}
    assert got == dict(app.expected_critical), analysis.mismatch_description()


@pytest.mark.parametrize("app", all_apps(), ids=lambda app: app.name)
def test_program_runs_successfully(app):
    from repro.tracer.driver import compile_and_run

    result = compile_and_run(app.source(), module_name=app.name)
    assert not result.failed
    assert result.output, "every benchmark must produce observable output"


class TestAnalysisDetails:
    def test_cg_case_study(self):
        """Paper Sec. IV-D: only x (WAR) and the index are critical; the
        other algorithm-2 inputs are not."""
        analysis = analyze_app(get_app("cg"))
        report = analysis.report
        assert report.find("x").dependency.value == "WAR"
        assert report.induction_variable == "it"
        for name in ("z", "p", "q", "r", "A"):
            assert report.find(name) is None

    def test_is_has_two_rapo_arrays(self):
        analysis = analyze_app(get_app("is"))
        by_type = {}
        for variable in analysis.report.critical_variables:
            by_type.setdefault(variable.dependency.value, []).append(variable.name)
        assert sorted(by_type["RAPO"]) == ["bucket_ptrs", "key_array"]

    def test_ft_has_outcome(self):
        analysis = analyze_app(get_app("ft"))
        assert analysis.report.find("sum").dependency.value == "Outcome"

    def test_hpccg_timers_are_war(self):
        analysis = analyze_app(get_app("hpccg"))
        for timer in ("t1", "t2", "t3"):
            assert analysis.report.find(timer).dependency.value == "WAR"

    def test_dependency_type_population(self):
        """Aggregate characterization (paper Sec. VI-B): WAR dominates, with a
        couple of Outcome and RAPO variables and one Index per benchmark."""
        counts = {"WAR": 0, "RAPO": 0, "Outcome": 0, "Index": 0}
        for app in all_apps():
            for dep in app.expected_critical.values():
                counts[dep] += 1
        assert counts["Index"] == 14
        assert counts["WAR"] > counts["RAPO"] + counts["Outcome"]
        assert counts["RAPO"] == 2
        assert counts["Outcome"] == 2

    def test_checkpoint_sizes_are_positive_and_small(self):
        analysis = analyze_app(get_app("himeno"))
        total = analysis.report.checkpoint_bytes()
        assert 0 < total < analysis.execution.memory.process_image_bytes
