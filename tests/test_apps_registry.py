"""Unit tests for the benchmark registry and app definitions."""

import pytest

from repro.apps import APP_ORDER, all_apps, app_names, find_mclr, get_app
from repro.codegen import compile_source
from repro.core.config import MainLoopSpec


class TestRegistry:
    def test_fourteen_benchmarks_registered(self):
        assert len(APP_ORDER) == 14
        assert len(all_apps()) == 14

    def test_table2_order(self):
        assert APP_ORDER == ["himeno", "hpccg", "cg", "mg", "ft", "sp", "ep",
                             "is", "bt", "lu", "comd", "miniamr", "amg", "hacc"]

    def test_example_not_in_study_but_retrievable(self):
        assert "example" not in app_names()
        assert "example" in app_names(include_example=True)
        assert get_app("example").name == "example"

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            get_app("linpack")

    def test_every_app_has_expected_critical_variables(self):
        for app in all_apps():
            assert app.expected_critical, app.name
            assert set(app.expected_critical.values()) <= {
                "WAR", "RAPO", "Outcome", "Index"}

    def test_every_app_has_exactly_one_index_variable(self):
        for app in all_apps():
            index_vars = [name for name, dep in app.expected_critical.items()
                          if dep == "Index"]
            assert len(index_vars) == 1, app.name

    def test_necessity_variables_subset_of_expected(self):
        for app in all_apps():
            assert set(app.necessity_variables()) <= set(app.expected_critical), \
                app.name


class TestAppDefinitions:
    @pytest.mark.parametrize("app", all_apps(include_example=True),
                             ids=lambda app: app.name)
    def test_source_has_mclr_markers(self, app):
        start, end = find_mclr(app.source())
        assert 0 < start < end

    @pytest.mark.parametrize("app", all_apps(include_example=True),
                             ids=lambda app: app.name)
    def test_source_compiles_and_verifies(self, app):
        module = compile_source(app.source(), module_name=app.name)
        assert "main" in module.functions

    @pytest.mark.parametrize("app", all_apps(), ids=lambda app: app.name)
    def test_large_source_compiles(self, app):
        module = compile_source(app.large_source(), module_name=app.name)
        assert "main" in module.functions

    def test_main_loop_spec_from_markers(self):
        app = get_app("cg")
        spec = app.main_loop()
        assert isinstance(spec, MainLoopSpec)
        assert spec.function == "main"
        assert spec.mclr == app.mclr_string

    def test_source_params_override(self):
        app = get_app("mg")
        small = app.source(n=16)
        assert "double u[16];" in small
        default = app.source()
        assert "double u[64];" in default

    def test_missing_markers_detected(self):
        with pytest.raises(ValueError):
            find_mclr("int main() { return 0; }")

    def test_module_helper(self):
        module = get_app("himeno").module()
        assert module.name == "himeno"

    def test_ft_uses_global_call_option(self):
        app = get_app("ft")
        assert app.autocheck_options.get("include_global_accesses_in_calls") is True

    def test_metadata_fields_populated(self):
        for app in all_apps():
            assert app.title and app.description and app.category
            assert app.parallel_model
