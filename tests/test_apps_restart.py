"""Integration: restart validation (paper Sec. VI-B) on a benchmark subset.

The full 14-benchmark validation lives in the benchmark harness
(``benchmarks/bench_validation.py``) and in ``autocheck validate``; here a
representative subset keeps the unit-test suite fast while still exercising
every dependency class (WAR arrays and scalars, RAPO arrays, Outcome, Index)
through a real fail-stop + restart cycle.
"""

import pytest

from repro.apps import get_app
from repro.checkpoint import RestartValidator
from repro.experiments.common import analyze_app

SUBSET = ["himeno", "cg", "ft", "is", "comd"]


@pytest.fixture(scope="module")
def analyses():
    return {name: analyze_app(get_app(name)) for name in SUBSET}


@pytest.mark.parametrize("name", SUBSET)
def test_restart_with_detected_variables_is_sufficient(analyses, name):
    analysis = analyses[name]
    report = analysis.report
    with RestartValidator(analysis.module, report.main_loop,
                          benchmark=name) as validator:
        outcome = validator.validate(report.names(), fail_at_iteration=3)
    assert outcome.restart_successful, (
        f"{name}: combined output after restart differs from the "
        f"failure-free run")


@pytest.mark.parametrize("name", SUBSET)
def test_detected_variables_are_not_false_positives(analyses, name):
    analysis = analyses[name]
    app = analysis.app
    report = analysis.report
    names = report.names()
    check = [variable for variable in app.necessity_variables()
             if variable in names]
    with RestartValidator(analysis.module, report.main_loop,
                          benchmark=name) as validator:
        necessity = validator.necessity_study(names, check_variables=check,
                                              fail_at_iteration=3)
    assert necessity.all_necessary, necessity.false_positives


def test_restart_at_different_failure_points(analyses):
    """Failing earlier or later in the loop must not matter."""
    analysis = analyses["cg"]
    report = analysis.report
    with RestartValidator(analysis.module, report.main_loop,
                          benchmark="cg") as validator:
        for fail_at in (2, 4):
            outcome = validator.validate(report.names(), fail_at_iteration=fail_at)
            assert outcome.restart_successful, f"failure at iteration {fail_at}"


def test_checkpoint_much_smaller_than_process_image(analyses):
    for name, analysis in analyses.items():
        image = analysis.execution.memory.process_image_bytes
        checkpoint = analysis.report.checkpoint_bytes()
        assert checkpoint < image, name
