"""Tests for the fault-injection campaign subsystem (repro.campaign)."""

import json

import pytest

from repro.campaign import (
    CONTENT_POLICIES,
    INTERVAL_POLICIES,
    KILL_BEFORE_FIRST,
    KILL_DURING_WRITE,
    KILL_RANDOM,
    CampaignConfig,
    CampaignReport,
    AppVerdict,
    NecessityVerdict,
    PolicyError,
    TrialResult,
    outputs_equivalent,
    parse_policies,
    plan_cell,
    resolve_app_names,
    run_campaign,
    writes_per_run,
)
from repro.apps.registry import app_names


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #
class TestPlan:
    def test_same_seed_same_plan(self):
        a = plan_cell("cg", "critical", "every-k", 2, 5, seed=7,
                      iterations=8, writes_per_run=4)
        b = plan_cell("cg", "critical", "every-k", 2, 5, seed=7,
                      iterations=8, writes_per_run=4)
        assert a == b

    def test_different_seed_different_kills(self):
        a = plan_cell("cg", "critical", "every-k", 2, 8, seed=7,
                      iterations=100, writes_per_run=50)
        b = plan_cell("cg", "critical", "every-k", 2, 8, seed=8,
                      iterations=100, writes_per_run=50)
        assert [t.kill_iteration for t in a] != [t.kill_iteration for t in b]

    def test_cells_draw_independently(self):
        # The plan of one cell does not depend on which other cells exist.
        alone = plan_cell("cg", "critical", "young", 2, 4, seed=7,
                          iterations=9, writes_per_run=5)
        other = plan_cell("mg", "blcr", "every-k", 1, 4, seed=7,
                          iterations=9, writes_per_run=10)
        again = plan_cell("cg", "critical", "young", 2, 4, seed=7,
                          iterations=9, writes_per_run=5)
        assert alone == again
        assert other != alone

    def test_edges_pinned_first(self):
        trials = plan_cell("cg", "critical", "every-k", 2, 3, seed=7,
                           iterations=8, writes_per_run=4)
        assert trials[0].kill_kind == KILL_BEFORE_FIRST
        assert trials[0].kill_iteration == 1
        assert trials[1].kill_kind == KILL_DURING_WRITE
        assert 1 <= trials[1].fail_at_checkpoint_write <= 4
        assert trials[2].kill_kind == KILL_RANDOM
        assert 1 <= trials[2].kill_iteration <= 8

    def test_during_write_skipped_when_no_writes(self):
        trials = plan_cell("cg", "critical", "every-k", 20, 3, seed=7,
                           iterations=8, writes_per_run=0)
        assert [t.kill_kind for t in trials] == [
            KILL_BEFORE_FIRST, KILL_RANDOM, KILL_RANDOM]

    def test_writes_per_run(self):
        # Header entries 1..iterations+1 checkpoint when divisible by k.
        assert writes_per_run(iterations=8, interval_iterations=1) == 9
        assert writes_per_run(iterations=8, interval_iterations=2) == 4
        assert writes_per_run(iterations=8, interval_iterations=9) == 1
        assert writes_per_run(iterations=8, interval_iterations=10) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(PolicyError):
            plan_cell("cg", "critical", "every-k", 2, 0, seed=7,
                      iterations=8, writes_per_run=4)
        with pytest.raises(PolicyError):
            plan_cell("cg", "critical", "every-k", 2, 3, seed=7,
                      iterations=0, writes_per_run=0)
        with pytest.raises(PolicyError):
            writes_per_run(iterations=8, interval_iterations=0)


class TestPolicyParsing:
    def test_parse_preserves_canonical_order(self):
        assert parse_policies("blcr,critical", CONTENT_POLICIES,
                              "content") == ["critical", "blcr"]
        assert parse_policies("daly , young", INTERVAL_POLICIES,
                              "interval") == ["young", "daly"]

    def test_unknown_policy_raises(self):
        with pytest.raises(PolicyError, match="bogus"):
            parse_policies("critical,bogus", CONTENT_POLICIES, "content")
        with pytest.raises(PolicyError, match="no content"):
            parse_policies(" , ", CONTENT_POLICIES, "content")

    def test_resolve_all_is_the_full_fleet(self):
        fleet = resolve_app_names("all")
        assert fleet == app_names(include_example=True, include_extras=True)
        assert len(fleet) == 16
        assert "example" in fleet and "bigarray" in fleet

    def test_resolve_unknown_app_raises(self):
        with pytest.raises(PolicyError, match="nosuchapp"):
            resolve_app_names("cg,nosuchapp")


# --------------------------------------------------------------------------- #
# Restart equivalence criterion
# --------------------------------------------------------------------------- #
class TestOutputsEquivalent:
    REF = ["a", "b", "c", "d"]

    def test_exact_split(self):
        assert outputs_equivalent(self.REF, ["a", "b"], ["c", "d"])

    def test_replay_overlap(self):
        # Restart resumed from a checkpoint before the kill point and
        # re-printed one line.
        assert outputs_equivalent(self.REF, ["a", "b"], ["b", "c", "d"])

    def test_cold_restart(self):
        assert outputs_equivalent(self.REF, [], self.REF)
        assert outputs_equivalent(self.REF, ["a"], self.REF)

    def test_gap_rejected(self):
        # "b" was printed by neither run: state was silently skipped.
        assert not outputs_equivalent(self.REF, ["a"], ["c", "d"])

    def test_wrong_prefix_rejected(self):
        assert not outputs_equivalent(self.REF, ["a", "x"], ["c", "d"])

    def test_wrong_suffix_rejected(self):
        assert not outputs_equivalent(self.REF, ["a", "b"], ["c", "x"])

    def test_restart_longer_than_reference_rejected(self):
        assert not outputs_equivalent(self.REF, [], ["z"] + self.REF)

    def test_empty_reference(self):
        assert outputs_equivalent([], [], [])


# --------------------------------------------------------------------------- #
# Report / verdict logic
# --------------------------------------------------------------------------- #
def _trial(**overrides):
    base = dict(app="cg", content="critical", interval_policy="every-k",
                interval_iterations=2, trial_index=0,
                kill_kind=KILL_RANDOM, kill_iteration=3,
                fail_at_checkpoint_write=None, equivalent=True,
                restored_iteration=2, checkpoints_written=1,
                snapshot_bytes=100, bytes_written=100, lost_iterations=1,
                measured_waste_fraction=0.1)
    base.update(overrides)
    return TrialResult(**base)


def _verdict(**overrides):
    base = dict(app="cg", iterations=8, trials=2, equivalent_trials=2)
    base.update(overrides)
    return AppVerdict(**base)


class TestVerdicts:
    def test_trial_ok(self):
        assert _trial().ok
        assert not _trial(equivalent=False).ok
        assert not _trial(error="boom").ok

    def test_app_verdict_pass(self):
        assert _verdict().restart_equivalence_pass
        assert _verdict().ok

    def test_app_verdict_fails_on_mismatch_or_error(self):
        assert not _verdict(equivalent_trials=1).restart_equivalence_pass
        assert not _verdict(errors=["prep: boom"]).restart_equivalence_pass
        assert not _verdict(trials=0, equivalent_trials=0).restart_equivalence_pass

    def test_necessity_gates_verdict(self):
        good = NecessityVerdict(checked_variables=["x"], false_positives=[])
        bad = NecessityVerdict(checked_variables=["x", "pad"],
                               false_positives=["pad"])
        assert _verdict(necessity=good).ok
        assert not _verdict(necessity=bad).ok
        assert _verdict(necessity=bad).restart_equivalence_pass

    def test_report_all_pass(self):
        report = CampaignReport(seed=7, trials_per_cell=2,
                                content_policies=["critical"],
                                interval_policies=["every-k"],
                                apps=[_verdict()], trials=[_trial()])
        assert report.all_pass
        report.apps.append(_verdict(app="mg", equivalent_trials=1))
        assert not report.all_pass

    def test_empty_report_is_not_a_pass(self):
        report = CampaignReport(seed=7, trials_per_cell=2,
                                content_policies=["critical"],
                                interval_policies=["every-k"],
                                apps=[], trials=[])
        assert not report.all_pass

    def test_json_is_canonical_and_timing_free(self):
        report = CampaignReport(seed=7, trials_per_cell=2,
                                content_policies=["critical"],
                                interval_policies=["every-k"],
                                apps=[_verdict()], trials=[_trial()])
        text = report.to_json()
        payload = json.loads(text)
        assert payload["all_pass"] is True
        assert payload["apps"][0]["restart_equivalence_pass"] is True
        assert "seconds" not in text and "time" not in payload
        # sort_keys: serialization is order-canonical.
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  indent=2) + "\n"


# --------------------------------------------------------------------------- #
# End-to-end campaigns (small apps; the fleet sweep runs via CI/benchmarks)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def example_campaign(tmp_path_factory):
    cache = tmp_path_factory.mktemp("campaign-cache")
    config = CampaignConfig(apps=["example"], trials=3, seed=7,
                            interval_policies=["every-k", "young", "daly"],
                            run_necessity=True, cache_dir=str(cache))
    return config, run_campaign(config)


class TestCampaignEndToEnd:
    def test_all_cells_pass(self, example_campaign):
        _, report = example_campaign
        assert report.all_pass
        verdict = report.apps[0]
        assert verdict.app == "example"
        assert verdict.trials == 3 * len(CONTENT_POLICIES) * 3
        assert verdict.equivalent_trials == verdict.trials
        assert not verdict.errors

    def test_matrix_covers_every_cell_and_edge(self, example_campaign):
        _, report = example_campaign
        cells = {(t.content, t.interval_policy) for t in report.trials}
        assert cells == {(c, i) for c in CONTENT_POLICIES
                         for i in ("every-k", "young", "daly")}
        kinds = {t.kill_kind for t in report.trials}
        assert KILL_BEFORE_FIRST in kinds
        assert KILL_DURING_WRITE in kinds
        assert KILL_RANDOM in kinds

    def test_storage_study_vs_blcr(self, example_campaign):
        _, report = example_campaign
        verdict = report.apps[0]
        critical = verdict.snapshot_bytes["critical"]
        assert 0 < critical < verdict.snapshot_bytes["full"]
        assert verdict.snapshot_bytes["blcr"] == verdict.blcr_bytes
        assert verdict.saved_bytes_vs_blcr == verdict.blcr_bytes - critical
        assert verdict.storage_ratio > 1000  # orders of magnitude (Table IV)

    def test_necessity_clean(self, example_campaign):
        _, report = example_campaign
        necessity = report.apps[0].necessity
        assert necessity is not None
        assert necessity.checked_variables  # something was ablated
        assert necessity.all_necessary

    def test_waste_fractions_sane(self, example_campaign):
        _, report = example_campaign
        verdict = report.apps[0]
        assert 0.0 < verdict.predicted_waste_fraction < 1.0
        assert 0.0 < verdict.measured_waste_fraction < 1.0
        for trial in report.trials:
            assert 0.0 <= trial.measured_waste_fraction < 1.0

    def test_model_policies_scale_cadence_with_content(self, example_campaign):
        _, report = example_campaign
        cadence = {(t.content, t.interval_policy): t.interval_iterations
                   for t in report.trials}
        # Bigger checkpoints -> longer model-recommended intervals.
        assert cadence[("blcr", "young")] > cadence[("critical", "young")]
        assert cadence[("blcr", "daly")] > cadence[("critical", "daly")]

    def test_rerun_reproduces_byte_for_byte(self, example_campaign):
        config, report = example_campaign
        again = run_campaign(config)
        assert report.to_json() == again.to_json()

    def test_seed_changes_the_plan(self, example_campaign, tmp_path):
        config, report = example_campaign
        other = CampaignConfig(apps=["example"], trials=3, seed=8,
                               interval_policies=["every-k", "young", "daly"],
                               run_necessity=True,
                               cache_dir=config.cache_dir)
        other_report = run_campaign(other)
        assert other_report.all_pass
        kills = [t.kill_iteration for t in report.trials]
        other_kills = [t.kill_iteration for t in other_report.trials]
        assert kills != other_kills

    def test_summary_table_renders(self, example_campaign):
        _, report = example_campaign
        text = report.summary()
        assert "example" in text
        assert "PASS" in text
        assert "seed 7" in text


class TestCampaignRobustness:
    def test_unknown_content_policy_rejected(self):
        with pytest.raises(PolicyError, match="content"):
            run_campaign(CampaignConfig(apps=["example"],
                                        content_policies=["bogus"]))
        with pytest.raises(PolicyError, match="interval"):
            run_campaign(CampaignConfig(apps=["example"],
                                        interval_policies=["hourly"]))

    def test_mismatch_is_reported_not_raised(self, tmp_path, monkeypatch):
        # Force every trial to disagree with the reference: the campaign
        # must complete and report FAIL verdicts instead of crashing.
        import repro.campaign.runner as runner_mod

        monkeypatch.setattr(runner_mod, "outputs_equivalent",
                            lambda *args: False)
        config = CampaignConfig(apps=["example"], trials=1,
                                content_policies=["critical"],
                                cache_dir=str(tmp_path / "cache"))
        report = run_campaign(config)
        assert not report.all_pass
        assert report.apps[0].equivalent_trials == 0
        assert not report.apps[0].errors  # mismatch, not error

    def test_prep_failure_is_contained(self, tmp_path, monkeypatch):
        import repro.campaign.runner as runner_mod

        def boom(*args, **kwargs):
            raise RuntimeError("analysis exploded")

        monkeypatch.setattr(runner_mod, "analyze_app_cached", boom)
        config = CampaignConfig(apps=["example"], trials=1,
                                content_policies=["critical"],
                                cache_dir=str(tmp_path / "cache"))
        report = run_campaign(config)
        assert not report.all_pass
        assert report.apps[0].errors
        assert "analysis exploded" in report.apps[0].errors[0]
