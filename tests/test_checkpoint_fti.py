"""Unit tests for checkpoint storage and the FTI-like library."""

import os

import pytest

from repro.checkpoint import CheckpointData, CheckpointStorage, FTI, FTIConfig, FTIError
from repro.checkpoint.fti import FTILevel


class TestCheckpointStorage:
    def test_write_and_latest(self, tmp_path):
        storage = CheckpointStorage(str(tmp_path))
        storage.write(CheckpointData(iteration=1, variables={"x": [1.0, 2.0]},
                                     sizes_bytes={"x": 16}))
        storage.write(CheckpointData(iteration=2, variables={"x": [3.0, 4.0]},
                                     sizes_bytes={"x": 16}))
        latest = storage.latest()
        assert latest.iteration == 2
        assert latest.variables["x"] == [3.0, 4.0]

    def test_only_latest_kept_by_default(self, tmp_path):
        storage = CheckpointStorage(str(tmp_path))
        for iteration in range(1, 5):
            storage.write(CheckpointData(iteration=iteration,
                                         variables={"x": [iteration]},
                                         sizes_bytes={"x": 8}))
        assert storage.checkpoint_count == 1

    def test_history_mode_keeps_all(self, tmp_path):
        storage = CheckpointStorage(str(tmp_path), keep_history=True)
        for iteration in range(1, 4):
            storage.write(CheckpointData(iteration=iteration,
                                         variables={"x": [iteration]},
                                         sizes_bytes={"x": 8}))
        assert storage.checkpoint_count == 3

    def test_empty_storage(self, tmp_path):
        storage = CheckpointStorage(str(tmp_path))
        assert storage.latest() is None
        assert storage.storage_bytes_on_disk() == 0

    def test_clear(self, tmp_path):
        storage = CheckpointStorage(str(tmp_path))
        storage.write(CheckpointData(iteration=1, variables={"x": [0]},
                                     sizes_bytes={"x": 8}))
        storage.clear()
        assert storage.latest() is None

    def test_roundtrip_preserves_int_and_float(self, tmp_path):
        storage = CheckpointStorage(str(tmp_path))
        storage.write(CheckpointData(iteration=1,
                                     variables={"i": [3], "d": [2.5]},
                                     sizes_bytes={"i": 4, "d": 8}))
        latest = storage.latest()
        assert latest.variables["i"] == [3]
        assert latest.variables["d"] == [2.5]
        assert latest.total_bytes == 12

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        storage = CheckpointStorage(str(tmp_path))
        storage.write(CheckpointData(iteration=7, variables={"x": [1]},
                                     sizes_bytes={"x": 8}))
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.endswith(".tmp")]
        assert leftovers == []


class _FakeStore:
    """In-memory stand-in for a protected variable."""

    def __init__(self, values):
        self.values = list(values)

    def read(self):
        return list(self.values)

    def write(self, values):
        self.values = list(values)


class TestFTI:
    def make_fti(self, tmp_path, interval=1):
        return FTI(FTIConfig(directory=str(tmp_path), level=FTILevel.L1,
                             checkpoint_interval=interval))

    def test_protect_checkpoint_recover_cycle(self, tmp_path):
        fti = self.make_fti(tmp_path)
        store = _FakeStore([1.0, 2.0, 3.0])
        fti.protect(0, "u", 24, store.read, store.write)
        fti.checkpoint(iteration=1)
        store.write([9.0, 9.0, 9.0])
        fti.recover()
        assert store.values == [1.0, 2.0, 3.0]

    def test_status_reflects_checkpoint_presence(self, tmp_path):
        fti = self.make_fti(tmp_path)
        store = _FakeStore([5])
        fti.protect(0, "n", 4, store.read, store.write)
        assert not fti.status()
        fti.checkpoint(iteration=1)
        assert fti.status()

    def test_recover_without_checkpoint_raises(self, tmp_path):
        fti = self.make_fti(tmp_path)
        with pytest.raises(FTIError):
            fti.recover()

    def test_duplicate_protection_rejected(self, tmp_path):
        fti = self.make_fti(tmp_path)
        store = _FakeStore([1])
        fti.protect(0, "x", 4, store.read, store.write)
        with pytest.raises(FTIError):
            fti.protect(0, "y", 4, store.read, store.write)
        with pytest.raises(FTIError):
            fti.protect(1, "x", 4, store.read, store.write)

    def test_checkpoint_interval_respected(self, tmp_path):
        fti = self.make_fti(tmp_path, interval=3)
        store = _FakeStore([1])
        fti.protect(0, "x", 4, store.read, store.write)
        written = [fti.checkpoint(iteration=i) for i in range(1, 7)]
        assert sum(1 for path in written if path is not None) == 2  # at 3 and 6

    def test_partial_recovery_names(self, tmp_path):
        fti = self.make_fti(tmp_path)
        a = _FakeStore([1.0])
        b = _FakeStore([2.0])
        fti.protect(0, "a", 8, a.read, a.write)
        fti.protect(1, "b", 8, b.read, b.write)
        fti.checkpoint(iteration=1)
        a.write([10.0])
        b.write([20.0])
        fti.recover(names=["a"])
        assert a.values == [1.0]
        assert b.values == [20.0]

    def test_checkpoint_bytes_and_protected_bytes(self, tmp_path):
        fti = self.make_fti(tmp_path)
        store = _FakeStore([0.0] * 4)
        fti.protect(0, "v", 32, store.read, store.write)
        assert fti.protected_bytes() == 32
        fti.checkpoint(iteration=1)
        assert fti.checkpoint_bytes() == 32
        assert fti.last_checkpoint().iteration == 1

    def test_finalize_blocks_further_checkpoints(self, tmp_path):
        fti = self.make_fti(tmp_path)
        store = _FakeStore([1])
        fti.protect(0, "x", 4, store.read, store.write)
        fti.finalize()
        with pytest.raises(FTIError):
            fti.checkpoint(iteration=1)
