"""Integration tests for checkpoint instrumentation, restart validation and
the BLCR storage model (paper Sec. VI-B and Table IV machinery)."""

import pytest

from repro.checkpoint import BLCRModel, RestartValidator, compare_storage_cost
from repro.checkpoint.fti import FTIConfig
from repro.checkpoint.instrument import CheckpointInstrumenter, InstrumentationError
from repro.core import MainLoopSpec


class TestInstrumenter:
    def test_instrumented_run_writes_checkpoints(self, mg_analysis, tmp_path):
        report = mg_analysis.report
        instrumenter = CheckpointInstrumenter(
            mg_analysis.module, report.main_loop, report.names(),
            FTIConfig(directory=str(tmp_path)))
        run = instrumenter.run()
        assert not run.failed
        assert run.checkpoints_written >= 5
        latest = run.fti.last_checkpoint()
        assert set(latest.variables) == set(report.names())

    def test_fault_injection_stops_run_mid_loop(self, mg_analysis, tmp_path):
        report = mg_analysis.report
        instrumenter = CheckpointInstrumenter(
            mg_analysis.module, report.main_loop, report.names(),
            FTIConfig(directory=str(tmp_path)))
        run = instrumenter.run(fail_at_iteration=2)
        assert run.failed
        assert len(run.output) < 6

    def test_restart_restores_latest_iteration(self, mg_analysis, tmp_path):
        report = mg_analysis.report
        instrumenter = CheckpointInstrumenter(
            mg_analysis.module, report.main_loop, report.names(),
            FTIConfig(directory=str(tmp_path)))
        instrumenter.run(fail_at_iteration=3)
        restart = instrumenter.run(restart=True)
        assert restart.restored_iteration == 3
        assert not restart.failed

    def test_unknown_protected_variable_rejected(self, mg_analysis, tmp_path):
        report = mg_analysis.report
        instrumenter = CheckpointInstrumenter(
            mg_analysis.module, report.main_loop, ["no_such_variable"],
            FTIConfig(directory=str(tmp_path)))
        with pytest.raises(InstrumentationError):
            instrumenter.run()

    def test_bad_loop_location_rejected(self, mg_analysis, tmp_path):
        with pytest.raises(InstrumentationError):
            CheckpointInstrumenter(
                mg_analysis.module,
                MainLoopSpec("main", start_line=1, end_line=2),
                ["u"], FTIConfig(directory=str(tmp_path)))


class TestRestartValidation:
    def test_sufficiency_with_detected_variables(self, mg_analysis):
        report = mg_analysis.report
        with RestartValidator(mg_analysis.module, report.main_loop,
                              benchmark="mg") as validator:
            outcome = validator.validate(report.names(), fail_at_iteration=3)
        assert outcome.restart_successful
        assert outcome.failed_run_output  # the failed run printed something
        assert outcome.restarted_output == outcome.failure_free_output

    def test_restart_without_any_checkpointed_variable_fails(self, mg_analysis):
        """Protecting an irrelevant variable only (not the solution arrays)
        must NOT reproduce the failure-free output — the negative control for
        the sufficiency study."""
        report = mg_analysis.report
        with RestartValidator(mg_analysis.module, report.main_loop,
                              benchmark="mg") as validator:
            outcome = validator.validate([report.induction_variable],
                                         fail_at_iteration=3)
        assert not outcome.restart_successful

    def test_necessity_study_flags_all_detected_variables(self, mg_analysis):
        report = mg_analysis.report
        with RestartValidator(mg_analysis.module, report.main_loop,
                              benchmark="mg") as validator:
            necessity = validator.necessity_study(report.names(),
                                                  fail_at_iteration=3)
        assert necessity.all_necessary
        assert set(necessity.necessary) == set(report.names())

    def test_failure_free_output_deterministic(self, mg_analysis):
        with RestartValidator(mg_analysis.module, mg_analysis.report.main_loop,
                              benchmark="mg") as validator:
            assert validator.failure_free_output() == validator.failure_free_output()


class TestBLCRModel:
    def test_process_image_larger_than_critical_set(self, mg_analysis):
        model = BLCRModel()
        blcr_bytes = model.checkpoint_bytes_from_result(mg_analysis.execution)
        autocheck_bytes = mg_analysis.report.checkpoint_bytes()
        assert blcr_bytes > autocheck_bytes * 10

    def test_overhead_configurable(self, mg_analysis):
        small = BLCRModel(process_overhead_bytes=0)
        big = BLCRModel(process_overhead_bytes=1 << 20)
        assert big.checkpoint_bytes_from_result(mg_analysis.execution) - \
            small.checkpoint_bytes_from_result(mg_analysis.execution) == 1 << 20

    def test_comparison_row(self, mg_analysis):
        row = compare_storage_cost("mg", mg_analysis.execution,
                                   mg_analysis.report.checkpoint_bytes())
        assert row.ratio > 1
        assert "mg" in row.summary()

    def test_missing_memory_rejected(self):
        from repro.tracer.interpreter import ExecutionResult

        result = ExecutionResult(output=[], return_value=None, steps=0, memory=None)
        with pytest.raises(ValueError):
            BLCRModel().checkpoint_bytes_from_result(result)
