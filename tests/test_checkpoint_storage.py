"""Crash-consistency tests for CheckpointStorage and the torn-write path.

A checkpoint writer can die anywhere, including inside the
``write()``/``os.replace()`` window.  A reader (the restarting process) must
never observe a torn checkpoint, recovery must fall back to the previous
complete one, and a restarted process must reclaim the stale tmp files the
dead writer left behind.
"""

import json
import os

import pytest

from repro.checkpoint.fti import FTI, FTIConfig
from repro.checkpoint.instrument import CheckpointInstrumenter
from repro.checkpoint.storage import CheckpointData, CheckpointStorage
from repro.core.config import MainLoopSpec
from repro.tracer.faults import SimulatedFailure


def _checkpoint(iteration, value):
    return CheckpointData(iteration=iteration,
                          variables={"x": [value]}, sizes_bytes={"x": 4})


class TestWriterKilledMidReplace:
    def test_reader_never_observes_torn_checkpoint(self, tmp_path,
                                                   monkeypatch):
        storage = CheckpointStorage(str(tmp_path))
        storage.write(_checkpoint(1, 10))

        # Kill the writer after the tmp file is fully written but before the
        # rename commits — the narrowest window of the protocol.
        real_replace = os.replace

        def dying_replace(src, dst):
            raise SimulatedFailure("power loss mid-replace")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(SimulatedFailure):
            storage.write(_checkpoint(2, 20))
        monkeypatch.setattr(os, "replace", real_replace)

        # The torn attempt is invisible to every read path...
        assert [os.path.basename(p) for p in storage.list_paths()] \
            == ["ckpt_00000001.json"]
        latest = storage.latest()
        assert latest.iteration == 1
        assert latest.variables["x"] == [10]
        # ...but its tmp file is still on disk (nothing cleaned it yet).
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if ".json.tmp" in name]
        assert leftovers

    def test_restarted_process_reclaims_stale_tmp_files(self, tmp_path,
                                                        monkeypatch):
        storage = CheckpointStorage(str(tmp_path))
        storage.write(_checkpoint(1, 10))
        monkeypatch.setattr(os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(
                                SimulatedFailure("crash")))
        with pytest.raises(SimulatedFailure):
            storage.write(_checkpoint(2, 20))
        monkeypatch.undo()

        # A restarting process opens the same directory: stale tmp files are
        # removed, the complete checkpoint survives.
        reopened = CheckpointStorage(str(tmp_path))
        assert not [name for name in os.listdir(str(tmp_path))
                    if ".json.tmp" in name]
        assert reopened.latest().iteration == 1

    def test_torn_tmp_never_shadows_history_rotation(self, tmp_path,
                                                     monkeypatch):
        # keep_history=False keeps exactly the latest complete checkpoint;
        # a torn write must not delete it.
        storage = CheckpointStorage(str(tmp_path), keep_history=False)
        storage.write(_checkpoint(1, 10))
        storage.write(_checkpoint(2, 20))
        assert storage.latest().iteration == 2
        monkeypatch.setattr(os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(
                                SimulatedFailure("crash")))
        with pytest.raises(SimulatedFailure):
            storage.write(_checkpoint(3, 30))
        monkeypatch.undo()
        assert storage.latest().iteration == 2

    def test_tmp_names_are_writer_unique(self, tmp_path, monkeypatch):
        # Two processes writing the same iteration must not collide on the
        # tmp name; ours embeds the pid.
        storage = CheckpointStorage(str(tmp_path))
        seen = {}
        real_open = open

        def spying_open(path, *args, **kwargs):
            if ".json.tmp" in str(path):
                seen["tmp"] = str(path)
            return real_open(path, *args, **kwargs)

        import builtins

        monkeypatch.setattr(builtins, "open", spying_open)
        storage.write(_checkpoint(1, 10))
        assert seen["tmp"].endswith(f".tmp.{os.getpid()}")


class TestFTIRecoveryAfterTornWrite:
    def test_recover_falls_back_to_previous_complete_checkpoint(
            self, tmp_path, monkeypatch):
        config = FTIConfig(directory=str(tmp_path))
        fti = FTI(config)
        value = [100]
        fti.protect(0, "x", 4, lambda: list(value),
                    lambda new: value.__setitem__(0, new[0]))
        fti.checkpoint(iteration=1)
        value[0] = 200
        monkeypatch.setattr(os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(
                                SimulatedFailure("crash")))
        with pytest.raises(SimulatedFailure):
            fti.checkpoint(iteration=2)
        monkeypatch.undo()
        # The torn write was not counted and recovery restores iteration 1.
        assert fti.checkpoints_written == 1
        value[0] = -1
        recovered = fti.recover()
        assert recovered.iteration == 1
        assert value[0] == 100


class TestInstrumentedTornWrite:
    @pytest.fixture()
    def instrumented(self, simple_loop_module, simple_loop_source, tmp_path):
        start, end = None, None
        # simple_loop has no @mclr markers; locate the `it` loop by line.
        for number, line in enumerate(simple_loop_source.splitlines(), 1):
            if "for (int it" in line:
                start = number
            if line.strip() == "}" and start and end is None and number > start:
                end = number
        spec = MainLoopSpec(function="main", start_line=start, end_line=end)
        config = FTIConfig(directory=str(tmp_path / "ckpt"))
        return CheckpointInstrumenter(simple_loop_module, spec,
                                      ["it", "total", "data"], config)

    def test_kill_during_checkpoint_write_then_restart(self, instrumented):
        reference = instrumented.run().output

        failed = instrumented.run(fail_at_checkpoint_write=2)
        assert failed.failed
        assert failed.checkpoints_written == 1  # the torn one never counted
        storage_dir = instrumented.fti_config.directory
        assert any(".json.tmp" in name for name in os.listdir(storage_dir))

        restart = instrumented.run(restart=True)
        assert not restart.failed
        # Restored from the previous complete checkpoint (write 1 committed
        # at header entry 1), and the stale tmp got cleaned on reopen.
        assert restart.restored_iteration == 1
        assert not any(".json.tmp" in name
                       for name in os.listdir(storage_dir))
        assert restart.output == reference

    def test_torn_tmp_content_is_actually_truncated(self, instrumented):
        instrumented.run(fail_at_checkpoint_write=1)
        storage_dir = instrumented.fti_config.directory
        torn = [name for name in os.listdir(storage_dir)
                if ".json.tmp" in name]
        assert torn
        with open(os.path.join(storage_dir, torn[0]),
                  encoding="utf-8") as handle:
            with pytest.raises(json.JSONDecodeError):
                json.load(handle)

    def test_fail_at_checkpoint_write_validation(self, instrumented):
        with pytest.raises(ValueError, match="fail_at_checkpoint_write"):
            instrumented.run(fail_at_checkpoint_write=0)
