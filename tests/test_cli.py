"""Tests for the command line interface."""

import os

from repro.cli import main
from repro.trace.textio import write_trace_file


class TestCLI:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "himeno" in out
        assert "hacc" in out
        assert "x (WAR)" in out

    def test_app_command_matches_paper(self, capsys):
        assert main(["app", "himeno"]) == 0
        out = capsys.readouterr().out
        assert "WAR" in out and "Index" in out
        assert "matches" in out

    def test_analyze_command_on_trace_file(self, capsys, tmp_path,
                                           example_trace, example_spec):
        path = str(tmp_path / "example.trace")
        write_trace_file(example_trace, path)
        code = main(["analyze", path,
                     "--function", example_spec.function,
                     "--start", str(example_spec.start_line),
                     "--end", str(example_spec.end_line)])
        assert code == 0
        out = capsys.readouterr().out
        assert "r" in out and "WAR" in out

    def test_trace_command(self, capsys, tmp_path, example_source):
        source_path = str(tmp_path / "prog.mc")
        with open(source_path, "w", encoding="utf-8") as handle:
            handle.write(example_source)
        out_path = str(tmp_path / "prog.trace")
        assert main(["trace", source_path, "-o", out_path]) == 0
        assert os.path.getsize(out_path) > 0
        assert "sum 300" in capsys.readouterr().out

    def test_figure5_command(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "Critical variables" in out
        assert "RAPO" in out

    def test_table2_subset(self, capsys):
        assert main(["table2", "--apps", "himeno"]) == 0
        out = capsys.readouterr().out
        assert "Himeno" in out and "p (WAR)" in out

    def test_table4_subset(self, capsys):
        assert main(["table4", "--apps", "himeno"]) == 0
        out = capsys.readouterr().out
        assert "BLCR" in out


class TestCacheCLI:
    def test_analyze_cache_cold_then_warm(self, capsys, tmp_path,
                                          example_trace, example_spec):
        path = str(tmp_path / "example.trace")
        write_trace_file(example_trace, path)
        cache_dir = str(tmp_path / "cache")
        argv = ["analyze", path,
                "--function", example_spec.function,
                "--start", str(example_spec.start_line),
                "--end", str(example_spec.end_line),
                "--cache", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Artifact cache: miss" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "Artifact cache: hit" in warm
        # --no-cache bypasses the store entirely.
        assert main(argv[:-3] + ["--no-cache"]) == 0
        assert "Artifact cache" not in capsys.readouterr().out

    def test_analyze_batch_and_gc(self, capsys, tmp_path):
        import json

        manifest = str(tmp_path / "manifest.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump([{"app": "example"}], handle)
        cache_dir = str(tmp_path / "cache")
        argv = ["analyze-batch", manifest, "--cache-dir", cache_dir,
                "--trace-dir", str(tmp_path / "traces")]
        assert main(argv) == 0
        assert "miss" in capsys.readouterr().out
        assert main(argv) == 0
        assert "hit" in capsys.readouterr().out

        assert main(["gc", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert main(["gc", "--cache-dir", cache_dir, "--clear",
                     "--dry-run"]) == 0
        assert "would evict 1" in capsys.readouterr().out
        assert main(["gc", "--cache-dir", cache_dir, "--clear"]) == 0
        assert "evicted 1" in capsys.readouterr().out

    def test_analyze_batch_reports_failures(self, capsys, tmp_path):
        import json

        manifest = str(tmp_path / "manifest.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump([{"app": "no-such-app"}], handle)
        assert main(["analyze-batch", manifest,
                     "--cache-dir", str(tmp_path / "cache"),
                     "--trace-dir", str(tmp_path / "traces")]) == 1
        assert "ERROR" in capsys.readouterr().out


class TestStaticCLI:
    def test_static_report_on_app(self, capsys):
        assert main(["static-report", "bigarray"]) == 0
        out = capsys.readouterr().out
        assert "static main loop" in out
        assert "static MLI candidates" in out
        assert "idom:" in out
        assert "live " in out

    def test_static_report_on_source_file(self, capsys, tmp_path,
                                          example_source):
        source_path = str(tmp_path / "prog.mc")
        with open(source_path, "w", encoding="utf-8") as handle:
            handle.write(example_source)
        assert main(["static-report", source_path]) == 0
        out = capsys.readouterr().out
        assert "static DDG" in out

    def test_static_report_unknown_target(self, capsys):
        assert main(["static-report", "no-such-thing"]) == 2
        assert "neither" in capsys.readouterr().err

    def test_app_static_check_passes(self, capsys):
        assert main(["app", "example", "--static-check"]) == 0
        out = capsys.readouterr().out
        assert "Static cross-check" in out and "ok" in out

    def test_analyze_static_check_needs_source(self, capsys, tmp_path,
                                               example_trace, example_spec):
        path = str(tmp_path / "example.trace")
        write_trace_file(example_trace, path)
        assert main(["analyze", path,
                     "--function", example_spec.function,
                     "--start", str(example_spec.start_line),
                     "--end", str(example_spec.end_line),
                     "--static-check"]) == 2
        assert "--source" in capsys.readouterr().err

    def test_analyze_static_check_and_prefilter(self, capsys, tmp_path,
                                                example_source, example_trace,
                                                example_spec):
        trace_path = str(tmp_path / "example.trace")
        write_trace_file(example_trace, trace_path)
        source_path = str(tmp_path / "example.mc")
        with open(source_path, "w", encoding="utf-8") as handle:
            handle.write(example_source)
        assert main(["analyze", trace_path,
                     "--function", example_spec.function,
                     "--start", str(example_spec.start_line),
                     "--end", str(example_spec.end_line),
                     "--source", source_path,
                     "--static-check", "--static-prefilter"]) == 0
        out = capsys.readouterr().out
        assert "Static cross-check" in out
        assert "Static prefilter" in out
        assert "skipped" in out


class TestExitCodeConvention:
    """campaign and the experiment verbs agree on exit codes:
    0 = success, 1 = failed verdict, 2 = unknown app/policy."""

    def _campaign_args(self, tmp_path, *extra):
        return ["campaign", "--apps", "example", "--policies", "critical",
                "--intervals", "every-k", "--trials", "1",
                "--cache-dir", str(tmp_path / "cache"), *extra]

    def test_campaign_success_writes_out_file(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "campaign.json"
        args = self._campaign_args(tmp_path, "--trials", "2",
                                   "--out", str(out_path))
        assert main(args) == 0
        assert "PASS" in capsys.readouterr().out
        report = json.loads(out_path.read_text())
        assert report["schema"] == 1
        assert report["all_pass"] is True

    def test_campaign_unknown_app_is_2(self, capsys, tmp_path):
        assert main(["campaign", "--apps", "nosuchapp",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "nosuchapp" in capsys.readouterr().err

    def test_campaign_unknown_policy_is_2(self, capsys, tmp_path):
        assert main(["campaign", "--apps", "example",
                     "--policies", "everything",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "everything" in capsys.readouterr().err

    def test_campaign_failed_verdict_is_1(self, capsys, tmp_path,
                                          monkeypatch):
        # Force every trial to look non-equivalent: the campaign must report
        # the failure through the exit code, not a traceback.
        monkeypatch.setattr("repro.campaign.runner.outputs_equivalent",
                            lambda *args: False)
        assert main(self._campaign_args(tmp_path)) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_table_verb_unknown_app_is_2(self, capsys):
        assert main(["table2", "--apps", "nosuchapp"]) == 2
        assert "nosuchapp" in capsys.readouterr().err

    def test_validate_unknown_app_is_2(self, capsys):
        assert main(["validate", "--apps", "nosuchapp"]) == 2
        assert "nosuchapp" in capsys.readouterr().err

    def test_app_verb_unknown_app_is_2(self, capsys):
        assert main(["app", "nosuchapp"]) == 2
        assert "nosuchapp" in capsys.readouterr().err

    def test_validate_failed_verdict_is_1(self, capsys, monkeypatch):
        class _FailedOutcome:
            restart_successful = False

        class _EmptyNecessity:
            necessary = {}

        class _FakeValidator:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def validate(self, *args, **kwargs):
                return _FailedOutcome()

            def necessity_study(self, *args, **kwargs):
                return _EmptyNecessity()

        monkeypatch.setattr("repro.experiments.validation.RestartValidator",
                            _FakeValidator)
        assert main(["validate", "--apps", "example"]) == 1
        assert "FAILED" in capsys.readouterr().out
