"""Unit tests for AST -> IR lowering."""

import pytest

from repro.codegen import compile_source, flat_index_dims, ir_type_of
from repro.codegen.layout import byte_size_of, element_ctype
from repro.ir import ArrayType, F64, I32, Opcode, PointerType
from repro.ir.instructions import (
    AllocaInst,
    BitCastInst,
    CallInst,
    CastInst,
    CmpInst,
    GEPInst,
    LoadInst,
    PrintInst,
)
from repro.minicc import ast_nodes as ast
from repro.minicc.errors import SemanticError
from repro.tracer.driver import compile_and_run


def compile_main(body: str):
    module = compile_source("int main() {\n" + body + "\nreturn 0;\n}")
    return module, module.function("main")


def opcodes_of(function):
    return [inst.opcode for inst in function.instructions()]


class TestLayoutHelpers:
    def test_ir_type_of_scalars(self):
        assert ir_type_of(ast.INT) == I32
        assert ir_type_of(ast.DOUBLE) == F64

    def test_ir_type_of_array(self):
        ir_ty = ir_type_of(ast.ArrayType(ast.DOUBLE, (3, 4)))
        assert isinstance(ir_ty, ArrayType)
        assert ir_ty.count == 12

    def test_ir_type_of_pointer(self):
        ir_ty = ir_type_of(ast.PointerType(ast.IntType(), (8,)))
        assert isinstance(ir_ty, PointerType)

    def test_flat_index_dims_full_subscripts(self):
        assert flat_index_dims(ast.ArrayType(ast.DOUBLE, (4, 5, 6)), 3) == (5, 6)

    def test_flat_index_dims_single_subscript(self):
        assert flat_index_dims(ast.ArrayType(ast.DOUBLE, (9,)), 1) == ()

    def test_flat_index_dims_pointer_param(self):
        assert flat_index_dims(ast.PointerType(ast.DOUBLE, (8, 8)), 2) == (8,)

    def test_flat_index_dims_too_many_subscripts(self):
        with pytest.raises(ValueError):
            flat_index_dims(ast.ArrayType(ast.DOUBLE, (4,)), 3)

    def test_element_ctype(self):
        assert element_ctype(ast.ArrayType(ast.INT, (3,))) == ast.INT
        assert element_ctype(ast.DOUBLE) == ast.DOUBLE

    def test_byte_size_of(self):
        assert byte_size_of(ast.ArrayType(ast.DOUBLE, (10,))) == 80
        assert byte_size_of(ast.INT) == 4


class TestLoweringShapes:
    def test_every_local_gets_an_alloca(self):
        _, main = compile_main("int a; double b; int c = 3;")
        allocas = [inst for inst in main.instructions() if isinstance(inst, AllocaInst)]
        assert {inst.var_name for inst in allocas} == {"a", "b", "c"}

    def test_scalar_reads_are_fresh_loads(self):
        _, main = compile_main("int a = 1; int b = a + a;")
        loads = [inst for inst in main.instructions() if isinstance(inst, LoadInst)]
        # `a` is loaded twice (SSA reload-per-use), exactly what the reg-var
        # map relies on.
        assert len(loads) == 2

    def test_array_access_produces_bitcast_and_gep(self):
        _, main = compile_main("double u[4][4]; double x = u[1][2];")
        kinds = [type(inst) for inst in main.instructions()]
        assert BitCastInst in kinds
        assert GEPInst in kinds

    def test_flat_index_arithmetic_for_2d_access(self):
        _, main = compile_main("double u[4][6]; u[2][3] = 1.0;")
        muls = [inst for inst in main.instructions() if inst.opcode == Opcode.MUL]
        assert muls, "2D access should emit flat-index multiplication"
        # the multiplier is the trailing dimension (6)
        assert any(getattr(op, "value", None) == 6
                   for inst in muls for op in inst.operands)

    def test_int_to_double_conversion_inserted(self):
        _, main = compile_main("int n = 3; double x = n;")
        casts = [inst for inst in main.instructions() if isinstance(inst, CastInst)]
        assert any(inst.opcode == Opcode.SITOFP for inst in casts)

    def test_double_to_int_conversion_inserted(self):
        _, main = compile_main("double d = 2.5; int n = d;")
        casts = [inst for inst in main.instructions() if isinstance(inst, CastInst)]
        assert any(inst.opcode == Opcode.FPTOSI for inst in casts)

    def test_float_arithmetic_uses_float_opcodes(self):
        _, main = compile_main("double a = 1.0; double b = a * 2.0;")
        assert Opcode.FMUL in opcodes_of(main)

    def test_int_arithmetic_uses_int_opcodes(self):
        _, main = compile_main("int a = 1; int b = a * 2;")
        assert Opcode.MUL in opcodes_of(main)

    def test_modulo_lowered_to_srem(self):
        _, main = compile_main("int a = 7; int b = a % 3;")
        assert Opcode.SREM in opcodes_of(main)

    def test_for_loop_block_structure(self):
        _, main = compile_main("int s = 0; for (int i = 0; i < 4; ++i) { s = s + i; }")
        # entry + cond + body + step + end
        assert len(main.blocks) >= 5
        cond_branches = [inst for inst in main.instructions()
                         if inst.opcode == Opcode.BR and inst.operands]
        assert cond_branches, "loop must have a conditional branch"

    def test_while_loop_and_logical_and(self):
        _, main = compile_main("int i = 0; while (i < 5 && i >= 0) { i = i + 1; }")
        assert Opcode.AND in opcodes_of(main)

    def test_if_else_produces_conditional_branch(self):
        _, main = compile_main("int x = 1; if (x > 0) { x = 2; } else { x = 3; }")
        cmps = [inst for inst in main.instructions() if isinstance(inst, CmpInst)]
        assert cmps

    def test_builtin_call_marked_builtin(self):
        _, main = compile_main("double y = sqrt(2.0);")
        calls = [inst for inst in main.instructions() if isinstance(inst, CallInst)]
        assert calls and calls[0].is_builtin and calls[0].callee == "sqrt"

    def test_user_call_records_param_names(self):
        module = compile_source(
            "void foo(int *p, int *q) { q[0] = p[0]; }\n"
            "int main() { int a[2]; int b[2]; foo(a, b); return 0; }")
        main = module.function("main")
        calls = [inst for inst in main.instructions()
                 if isinstance(inst, CallInst) and not isinstance(inst, PrintInst)]
        assert calls[0].param_names == ("p", "q")
        assert not calls[0].is_builtin

    def test_print_lowered_with_labels(self):
        _, main = compile_main('int v = 3; print("value", v);')
        prints = [inst for inst in main.instructions() if isinstance(inst, PrintInst)]
        assert prints and prints[0].labels == ["value"]

    def test_source_lines_attached(self):
        module = compile_source("int main() {\n  int x = 1;\n  x = x + 1;\n  return x;\n}")
        main = module.function("main")
        lines = {inst.line for inst in main.instructions() if inst.line}
        assert {2, 3, 4} <= lines

    def test_global_initializer_kept(self):
        module = compile_source("double scale = 2.5;\nint main() { return 0; }")
        assert module.global_variable("scale").initializer == pytest.approx(2.5)

    def test_array_argument_decay(self):
        module = compile_source(
            "double total(double *v) { return v[0]; }\n"
            "int main() { double data[3]; double t = total(data); return 0; }")
        main = module.function("main")
        assert any(isinstance(inst, BitCastInst) for inst in main.instructions())

    def test_assigning_to_array_rejected(self):
        with pytest.raises(SemanticError):
            compile_main("int a[3]; a = 4;")


class TestLoweringSemantics:
    """Behavioural checks: the lowered program computes the right values."""

    @pytest.mark.parametrize("expr,expected", [
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
        ("10 / 3", 3),
        ("10 % 3", 1),
        ("7 - 10", -3),
        ("1 < 2", 1),
        ("2 < 1", 0),
        ("1 <= 1", 1),
        ("3 != 3", 0),
        ("!0", 1),
        ("!7", 0),
        ("-(3 + 4)", -7),
        ("1 && 2", 1),
        ("1 && 0", 0),
        ("0 || 5", 1),
    ])
    def test_integer_expression_value(self, expr, expected):
        result = compile_and_run(
            f"int main() {{ int v = {expr}; print(v); return 0; }}")
        assert result.output == [str(expected)]

    def test_double_expression_value(self):
        result = compile_and_run(
            "int main() { double v = 1.5 * 4.0 + 1.0; print(v); return 0; }")
        assert result.output == ["7"]

    def test_compound_assignment_semantics(self):
        result = compile_and_run(
            "int main() { int x = 10; x += 5; x *= 2; x -= 4; x /= 2; "
            "print(x); return 0; }")
        assert result.output == ["13"]

    def test_pre_and_post_increment(self):
        result = compile_and_run(
            "int main() { int i = 3; int a = i++; int b = ++i; "
            "print(a, b, i); return 0; }")
        assert result.output == ["3 5 5"]

    def test_nested_loop_sum(self):
        result = compile_and_run(
            "int main() { int s = 0;"
            " for (int i = 0; i < 4; ++i) { for (int j = 0; j < 3; ++j) { s = s + i * j; } }"
            " print(s); return 0; }")
        assert result.output == ["18"]

    def test_break_and_continue(self):
        result = compile_and_run(
            "int main() { int s = 0;"
            " for (int i = 0; i < 10; ++i) {"
            "   if (i == 2) { continue; }"
            "   if (i == 5) { break; }"
            "   s = s + i; }"
            " print(s); return 0; }")
        assert result.output == ["8"]  # 0+1+3+4

    def test_while_loop_semantics(self):
        result = compile_and_run(
            "int main() { int n = 1; while (n < 100) { n = n * 3; } "
            "print(n); return 0; }")
        assert result.output == ["243"]

    def test_recursion(self):
        result = compile_and_run(
            "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n"
            "int main() { print(fact(6)); return 0; }")
        assert result.output == ["720"]

    def test_2d_array_semantics(self):
        result = compile_and_run(
            "double m[3][3];\n"
            "int main() {"
            " for (int i = 0; i < 3; ++i) { for (int j = 0; j < 3; ++j) {"
            "   m[i][j] = i * 10 + j; } }"
            " print(m[2][1], m[0][2]);"
            " return 0; }")
        assert result.output == ["21 2"]

    def test_pointer_param_mutation_visible_in_caller(self):
        result = compile_and_run(
            "void fill(int *v, int n) { for (int i = 0; i < n; ++i) { v[i] = i * i; } }\n"
            "int main() { int data[5]; fill(data, 5); print(data[4]); return 0; }")
        assert result.output == ["16"]

    def test_global_accumulation_across_calls(self):
        result = compile_and_run(
            "int hits;\n"
            "void bump() { hits = hits + 1; }\n"
            "int main() { hits = 0; for (int i = 0; i < 7; ++i) { bump(); } "
            "print(hits); return 0; }")
        assert result.output == ["7"]
