"""The columnar block decoder and the engines' columnar walk.

Three layers of evidence pin the columnar fast path down:

1. **Decode equivalence** — the columns (and lazily materialized records)
   of :class:`repro.trace.columnar.TraceColumnarReader` match the
   per-record :class:`repro.trace.binio.TraceBinaryReader` walk exactly:
   property-tested on randomized round-tripped traces (hypothesis, reusing
   the binary-roundtrip strategies), and deterministically on traces large
   enough to exercise the numpy lockstep scan, the big-integer fallback
   and arbitrary ``start_record`` / ``end_record`` windows.
2. **Report equivalence, fleet-wide** — ``decode="columnar"`` produces the
   same full report as ``decode="records"`` on every registered benchmark
   (plus the synthetic ``bigarray`` stress app), under the fused *and* the
   parallel engine, with the static prefilter off *and* on (including
   identical skip counts).
3. **Fallback contract** — inputs the columnar reader cannot serve
   (in-memory traces, text traces) silently keep the record walk.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_engine_fused import _assert_reports_equal
from test_property_based import _binary_record_strategy

from repro.apps import all_apps, get_app
from repro.codegen.lowering import compile_source
from repro.core import AutoCheck, AutoCheckConfig
from repro.trace.binio import TraceBinaryReader, write_trace_file_binary
from repro.trace.columnar import TraceColumnarReader
from repro.trace.records import (
    GlobalSymbol,
    Trace,
    TraceOperand,
    TraceRecord,
)
from repro.tracer.driver import trace_to_file


# --------------------------------------------------------------------------- #
# Decode equivalence: columns == per-record reader
# --------------------------------------------------------------------------- #
def _assert_block_matches(block, records):
    """Every column of ``block`` agrees with the corresponding records."""
    strings = block.strings
    for row in range(block.count):
        reference = records[block.base_index + row]
        assert block.dyn_id[row] == reference.dyn_id
        assert block.opcode[row] == reference.opcode
        assert block.line[row] == reference.line
        assert strings[block.function_id[row]] == reference.function
        assert strings[block.callee_id[row]] == reference.callee
        assert bool(block.has_result[row]) == (reference.result is not None)
        slots = list(reference.operands)
        if reference.result is not None:
            slots.append(reference.result)
        lo = block.op_start[row]
        assert block.op_start[row + 1] - lo == len(slots)
        for offset, operand in enumerate(slots):
            assert bool(block.op_flags[lo + offset] & 1) == operand.is_register
            assert strings[block.op_name_id[lo + offset]] == operand.name
            assert block.op_address[lo + offset] == operand.address
        # lazy materialization returns the full record, field for field
        assert block.record(row) == reference


def _assert_columnar_equals_records(path, start=0, end=None,
                                    chunk_records=None):
    reader = TraceBinaryReader(path)
    records = list(reader.iter_records())
    stop = len(records) if end is None else min(end, len(records))
    with TraceColumnarReader(path) as columnar:
        kwargs = {}
        if chunk_records is not None:
            kwargs["chunk_records"] = chunk_records
        covered = start
        for block in columnar.iter_blocks(start_record=start, end_record=end,
                                          **kwargs):
            assert block.base_index == covered
            _assert_block_matches(block, records)
            covered += block.count
    assert covered == max(start, stop)


@given(st.lists(_binary_record_strategy, max_size=30))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_columnar_decode_equals_records_property(tmp_path_factory, records):
    """Columnar decode ≡ per-record decode on arbitrary round-tripped
    traces (multi-byte names, commas/newlines, >64-bit integers, floats,
    address-less operands — everything the binary encoding admits)."""
    trace = Trace(module_name="col,prop",
                  globals=[GlobalSymbol("g", 0x1000, 16, 64, True)],
                  records=records)
    path = str(tmp_path_factory.mktemp("col") / "prop.btrace")
    write_trace_file_binary(trace, path)
    _assert_columnar_equals_records(path)


def _synthetic_record(index, big_int_rows=()):
    """A varied record: opcode/operand mix cycles with ``index``."""
    operands = []
    for position in range((index % 4)):
        value = 2 ** 80 + index if index in big_int_rows else index * 3 + position
        operands.append(TraceOperand(
            index=str(position + 1), bits=64,
            value=value if position % 2 == 0 else float(position) / 2,
            is_register=position % 2 == 0,
            name=f"op{position}_{index % 7}",
            address=0x2000 + index * 8 if position == 0 else None))
    result = None
    if index % 3 == 0:
        result = TraceOperand(index="r", bits=64, value=index,
                              is_register=True, name=f"r{index % 5}")
    return TraceRecord(
        dyn_id=index + 1, opcode=26 + (index % 5),
        opcode_name=f"Op{index % 5}", function=f"fn{index % 3}",
        line=10 + (index % 20), column=index % 9, bb_label=index % 4,
        bb_id=f"{index % 4}:0", operands=operands, result=result,
        callee="callee" if index % 11 == 0 else "")


@pytest.fixture(scope="module")
def lockstep_trace(tmp_path_factory):
    """600 records: two full index blocks (numpy lockstep) + partial tail."""
    records = [_synthetic_record(index) for index in range(600)]
    path = str(tmp_path_factory.mktemp("col") / "lockstep.btrace")
    write_trace_file_binary(Trace(module_name="lockstep", records=records),
                            path)
    return path


def test_columnar_lockstep_scan_equals_records(lockstep_trace):
    _assert_columnar_equals_records(lockstep_trace)


def test_columnar_small_chunks_equal_records(lockstep_trace):
    """Chunking must not change the columns, only the block boundaries."""
    _assert_columnar_equals_records(lockstep_trace, chunk_records=256)


def test_columnar_bigint_fallback_equals_records(tmp_path_factory):
    """A >64-bit operand value aborts the lockstep chunk to the Python
    scan; the columns must come out identical anyway."""
    records = [_synthetic_record(index, big_int_rows={3, 300})
               for index in range(600)]
    path = str(tmp_path_factory.mktemp("col") / "bigint.btrace")
    write_trace_file_binary(Trace(module_name="bigint", records=records),
                            path)
    _assert_columnar_equals_records(path)


@given(st.integers(min_value=0, max_value=620),
       st.integers(min_value=0, max_value=620))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_columnar_window_equals_records_property(lockstep_trace, a, b):
    """Arbitrary [start, end) windows — leading/trailing partial index
    blocks and empty windows included — decode identically."""
    start, end = min(a, b), max(a, b)
    _assert_columnar_equals_records(lockstep_trace, start=start, end=end)


# --------------------------------------------------------------------------- #
# Report equivalence, fleet-wide
# --------------------------------------------------------------------------- #
def _equivalence_apps():
    return all_apps() + [get_app("bigarray")]


@pytest.fixture(scope="module", params=_equivalence_apps(),
                ids=lambda app: app.name)
def app_setup(request, tmp_path_factory):
    """Binary trace + record-decode fused reference report, once per app."""
    app = request.param
    source = app.source()
    module = compile_source(source, module_name=app.name)
    spec = app.main_loop(source)
    path = str(tmp_path_factory.mktemp("col") / f"{app.name}.btrace")
    trace_to_file(module, path, fmt="binary")
    options = dict(app.autocheck_options)
    reference = AutoCheck(
        AutoCheckConfig(main_loop=spec, decode="records", **options),
        trace_path=path, module=module).run()
    return spec, path, module, options, reference


def test_fused_columnar_report_identical_on_all_apps(app_setup):
    spec, path, module, options, reference = app_setup
    report = AutoCheck(
        AutoCheckConfig(main_loop=spec, decode="columnar", **options),
        trace_path=path, module=module).run()
    _assert_reports_equal(report, reference)


@pytest.mark.parametrize("workers", [2])
def test_parallel_columnar_report_identical_on_all_apps(app_setup, workers):
    spec, path, module, options, reference = app_setup
    columnar = AutoCheck(
        AutoCheckConfig(main_loop=spec, analysis_engine="parallel",
                        workers=workers, decode="columnar", **options),
        trace_path=path, module=module).run()
    records = AutoCheck(
        AutoCheckConfig(main_loop=spec, analysis_engine="parallel",
                        workers=workers, decode="records", **options),
        trace_path=path, module=module).run()
    _assert_reports_equal(columnar, reference)
    _assert_reports_equal(records, reference)


def test_prefilter_columnar_report_identical_on_all_apps(app_setup):
    """With the static prefilter on, the columnar skip mask must agree
    with the per-record skip decisions — same report, same skip count."""
    spec, path, module, options, reference = app_setup
    columnar = AutoCheck(
        AutoCheckConfig(main_loop=spec, static_prefilter=True,
                        decode="columnar", **options),
        trace_path=path, module=module).run()
    records = AutoCheck(
        AutoCheckConfig(main_loop=spec, static_prefilter=True,
                        decode="records", **options),
        trace_path=path, module=module).run()
    _assert_reports_equal(columnar, reference)
    _assert_reports_equal(records, reference)
    assert columnar.prefilter_info is not None
    assert records.prefilter_info is not None
    assert (columnar.prefilter_info.skipped_records
            == records.prefilter_info.skipped_records)


# --------------------------------------------------------------------------- #
# Fallback contract
# --------------------------------------------------------------------------- #
def test_text_trace_falls_back_to_record_walk(tmp_path):
    """A text trace cannot columnar-decode; decode='columnar' must still
    analyse it (silently via the record walk), identically."""
    app = get_app("example")
    source = app.source()
    module = compile_source(source, module_name="example")
    spec = app.main_loop(source)
    path = str(tmp_path / "example.trace")
    trace_to_file(module, path, fmt="text")
    columnar = AutoCheck(AutoCheckConfig(main_loop=spec, decode="columnar"),
                         trace_path=path).run()
    records = AutoCheck(AutoCheckConfig(main_loop=spec, decode="records"),
                        trace_path=path).run()
    _assert_reports_equal(columnar, records)


def test_unknown_decode_rejected():
    app = get_app("example")
    spec = app.main_loop(app.source())
    with pytest.raises(ValueError, match="decode"):
        AutoCheckConfig(main_loop=spec, decode="vectorized")
