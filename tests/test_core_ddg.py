"""Unit tests for the DDG structure, reg maps, and Algorithm-1 contraction."""

import pytest

from repro.core.contraction import contract_ddg, contraction_is_sound
from repro.core.ddg import DDG, NodeKind
from repro.core.regmaps import RegRegMap, RegVarMap


def build_paper_like_ddg():
    """A small complete DDG shaped like the paper's Fig. 5(c):

    MLI variables s, r, a, b, sum; local m; registers %1..%6.
    s -> %1 -> a ; r -> %2 -> a ; a -> %3 -> m ; b -> %4 -> m ; m -> %5 -> sum
    """
    ddg = DDG()
    for name in ("s", "r", "a", "b", "sum"):
        ddg.add_node(name, NodeKind.MLI, name)
    ddg.add_node("m", NodeKind.LOCAL, "m")
    for reg in ("%1", "%2", "%3", "%4", "%5"):
        ddg.add_node(reg, NodeKind.REGISTER, reg)
    edges = [("s", "%1"), ("%1", "a"), ("r", "%2"), ("%2", "a"),
             ("a", "%3"), ("%3", "m"), ("b", "%4"), ("%4", "m"),
             ("m", "%5"), ("%5", "sum")]
    for parent, child in edges:
        ddg.add_edge(parent, child)
    return ddg


class TestDDGStructure:
    def test_add_node_idempotent(self):
        ddg = DDG()
        first = ddg.add_node("x", NodeKind.MLI)
        second = ddg.add_node("x", NodeKind.MLI)
        assert first is second
        assert ddg.node_count == 1

    def test_edges_and_parent_child_queries(self):
        ddg = build_paper_like_ddg()
        assert ddg.parents_of("a") == {"%1", "%2"}
        assert ddg.children_of("m") == {"%5"}
        assert ("%5", "sum") in ddg.edges()

    def test_self_edges_ignored(self):
        ddg = DDG()
        ddg.add_node("x", NodeKind.MLI)
        ddg.add_edge("x", "x")
        assert ddg.edge_count == 0

    def test_edge_requires_nodes(self):
        ddg = DDG()
        ddg.add_node("x", NodeKind.MLI)
        with pytest.raises(KeyError):
            ddg.add_edge("x", "ghost")

    def test_remove_node_cleans_edges(self):
        ddg = build_paper_like_ddg()
        ddg.remove_node("m")
        assert not ddg.has_node("m")
        assert "m" not in ddg.parents_of("%5")
        assert "%3" in ddg.node_keys()

    def test_ancestors(self):
        ddg = build_paper_like_ddg()
        assert {"s", "r", "%1", "%2"} <= ddg.ancestors_of("a")
        assert "sum" not in ddg.ancestors_of("a")

    def test_copy_is_independent(self):
        ddg = build_paper_like_ddg()
        clone = ddg.copy()
        clone.remove_node("sum")
        assert ddg.has_node("sum")
        assert clone.node_count == ddg.node_count - 1

    def test_mli_nodes_listing(self):
        ddg = build_paper_like_ddg()
        assert {n.key for n in ddg.mli_nodes()} == {"s", "r", "a", "b", "sum"}

    def test_to_networkx_export(self):
        graph = build_paper_like_ddg().to_networkx()
        assert graph.number_of_nodes() == 11
        assert graph.has_edge("%5", "sum")
        assert graph.nodes["a"]["kind"] == "mli"

    def test_to_dot_contains_nodes(self):
        dot = build_paper_like_ddg().to_dot()
        assert "digraph" in dot
        assert '"sum"' in dot


class TestRegMaps:
    def test_reg_var_map_on_the_fly_updates(self):
        regvar = RegVarMap()
        regvar.associate("main", "8", "a@0x1")
        assert regvar.lookup("main", "8") == "a@0x1"
        # SSA reload: the same register later maps to a different variable
        regvar.associate("main", "8", "b@0x2")
        assert regvar.lookup("main", "8") == "b@0x2"

    def test_reg_var_map_keyed_per_function(self):
        regvar = RegVarMap()
        regvar.associate("main", "3", "x@0x1")
        assert regvar.lookup("foo", "3") is None

    def test_forget_function(self):
        regvar = RegVarMap()
        regvar.associate("foo", "1", "p@0x1")
        regvar.associate("main", "1", "a@0x2")
        regvar.forget_function("foo")
        assert regvar.lookup("foo", "1") is None
        assert regvar.lookup("main", "1") == "a@0x2"
        assert len(regvar) == 1

    def test_reg_reg_map_links(self):
        regreg = RegRegMap()
        regreg.link("main", "9", ["8", "5"])
        regreg.link("main", "9", ["7"])
        assert regreg.inputs_of("main", "9") == {("main", "8"), ("main", "5"),
                                                 ("main", "7")}
        assert regreg.inputs_of("main", "42") == set()
        assert len(regreg) == 1


class TestContraction:
    def test_contracted_ddg_has_only_mli_nodes(self):
        complete = build_paper_like_ddg()
        contracted = contract_ddg(complete)
        assert {n.key for n in contracted.nodes()} == {"s", "r", "a", "b", "sum"}

    def test_contracted_edges_match_paper_figure(self):
        complete = build_paper_like_ddg()
        contracted = contract_ddg(complete)
        assert contracted.parents_of("a") == {"s", "r"}
        assert contracted.parents_of("sum") == {"a", "b"}
        assert contracted.parents_of("s") == set()

    def test_contraction_soundness_helper(self):
        complete = build_paper_like_ddg()
        contracted = contract_ddg(complete)
        assert contraction_is_sound(complete, contracted)

    def test_original_graph_not_mutated(self):
        complete = build_paper_like_ddg()
        nodes_before = complete.node_count
        contract_ddg(complete)
        assert complete.node_count == nodes_before
        assert complete.has_node("m")

    def test_cycle_through_local_terminates(self):
        """A local accumulator t = t + x creates a cycle t -> %r -> t; the
        contraction must terminate and still expose x as sum's ancestor."""
        ddg = DDG()
        ddg.add_node("x", NodeKind.MLI)
        ddg.add_node("sum", NodeKind.MLI)
        ddg.add_node("t", NodeKind.LOCAL)
        ddg.add_node("%1", NodeKind.REGISTER)
        ddg.add_node("%2", NodeKind.REGISTER)
        # t = t + x  (load t -> %1, load x -> %2, add, store t)
        ddg.add_edge("t", "%1")
        ddg.add_edge("x", "%2")
        ddg.add_edge("%1", "t")
        ddg.add_edge("%2", "t")
        # sum = t
        ddg.add_edge("t", "sum")
        contracted = contract_ddg(ddg)
        assert contracted.parents_of("sum") == {"x"}
        assert contraction_is_sound(ddg, contracted)

    def test_mli_parent_chain_not_shortcut(self):
        """Dependencies running through another MLI variable stop there: the
        contraction must not create a transitive edge bypassing it."""
        ddg = DDG()
        for name in ("a", "b", "c"):
            ddg.add_node(name, NodeKind.MLI)
        ddg.add_node("%1", NodeKind.REGISTER)
        ddg.add_node("%2", NodeKind.REGISTER)
        ddg.add_edge("a", "%1")
        ddg.add_edge("%1", "b")
        ddg.add_edge("b", "%2")
        ddg.add_edge("%2", "c")
        contracted = contract_ddg(ddg)
        assert contracted.parents_of("c") == {"b"}
        assert contracted.parents_of("b") == {"a"}
        assert "a" not in contracted.parents_of("c")

    def test_explicit_mli_keys_argument(self):
        ddg = build_paper_like_ddg()
        contracted = contract_ddg(ddg, mli_keys=["a", "sum"])
        assert set(contracted.node_keys()) == {"a", "sum"}

    def test_example_contraction_matches_paper(self, example_report):
        contracted = example_report.contracted_ddg
        labels = {node.key: node.label for node in contracted.nodes()}
        by_label = {}
        for parent, child in contracted.edges():
            by_label.setdefault(labels[child], set()).add(labels[parent])
        assert by_label["sum"] == {"a", "b"}
        assert by_label["a"] == {"s", "r"}
        assert by_label["b"] == {"a"}

    def test_example_contraction_sound(self, example_report):
        mli_keys = {node.key for node in example_report.contracted_ddg.nodes()}
        assert contraction_is_sound(example_report.complete_ddg,
                                    example_report.contracted_ddg,
                                    mli_keys=mli_keys)
