"""Unit tests for complete-DDG construction, R/W extraction and classification."""

import pytest
from conftest import make_alloca_record, make_operand as _operand, \
    make_record as _rec

from repro.core import MainLoopSpec
from repro.core.classify import classify_variables
from repro.core.dependency import DependencyAnalysis
from repro.core.ddg import NodeKind
from repro.core.preprocessing import identify_mli_variables
from repro.core.report import DependencyType
from repro.core.rwdeps import AccessKind, extract_rw_dependencies
from repro.core.varmap import VariableInfo
from repro.ir.opcodes import Opcode
from repro.trace.records import Trace


@pytest.fixture(scope="module")
def example_dependency(example_preprocessing):
    return DependencyAnalysis(example_preprocessing).run()


class TestDependencyAnalysis:
    def test_complete_ddg_contains_all_node_kinds(self, example_dependency):
        kinds = {node.kind for node in example_dependency.complete_ddg.nodes()}
        assert NodeKind.MLI in kinds
        assert NodeKind.REGISTER in kinds
        assert NodeKind.LOCAL in kinds

    def test_mli_nodes_present(self, example_dependency, example_preprocessing):
        labels = {node.label for node in example_dependency.complete_ddg.mli_nodes()}
        assert labels == set(example_preprocessing.mli_names())

    def test_reg_var_map_populated(self, example_dependency):
        assert len(example_dependency.reg_var_map) > 0

    def test_reg_reg_map_populated(self, example_dependency):
        assert len(example_dependency.reg_reg_map) > 0

    def test_param_binding_links_argument_to_parameter(self, example_dependency):
        # foo(a, b): parameter p of foo must be bound to the caller's `a`
        # (reg-var triplet correlation of paper Fig. 6b).
        bindings = example_dependency.param_bindings
        assert ("foo", "p") in bindings
        assert bindings[("foo", "p")].startswith("a@")
        assert bindings[("foo", "q")].startswith("b@")

    def test_selective_iteration_skips_control_flow(self, example_dependency,
                                                    example_preprocessing):
        inspected = example_dependency.inspected_records
        total_inside = len(example_preprocessing.regions.inside)
        assert 0 < inspected < total_inside

    def test_dependency_paths_from_r_to_a_to_sum(self, example_dependency,
                                                 example_preprocessing):
        ddg = example_dependency.complete_ddg
        keys = {var.name: var.key for var in example_preprocessing.mli_variables}
        assert keys["r"] in ddg.ancestors_of(keys["a"])
        assert keys["a"] in ddg.ancestors_of(keys["sum"])
        # sum never feeds anything
        assert ddg.children_of(keys["sum"]) == set()


class TestRWExtraction:
    def test_example_sequence_prefix_matches_figure5e(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        prefix = [str(event) for event in rw.loop_events[:6]]
        # Paper Fig. 5(e): s-Write; s-Read; r-Read; a-Write; a-Read; b-Write
        assert prefix == ["s-Write", "s-Read", "r-Read", "a-Write", "a-Read",
                          "b-Write"]

    def test_events_sorted_by_dynamic_id(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        ids = [event.dyn_id for event in rw.loop_events]
        assert ids == sorted(ids)

    def test_post_loop_read_of_sum(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        sum_key = example_preprocessing.find("sum").key
        post = rw.post_events_for(sum_key)
        assert post and post[0].kind is AccessKind.READ

    def test_element_offsets_recorded_for_arrays(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        a_key = example_preprocessing.find("a").key
        offsets = {event.element_offset for event in rw.events_for(a_key)}
        assert len(offsets) == 10  # a[0] .. a[9] all touched over the run

    def test_sequence_string_format(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        text = rw.sequence_string(limit=3)
        assert text.startswith("1: s-Write; 2: s-Read; 3: r-Read")


class TestClassification:
    def test_example_classification(self, example_report):
        got = {v.name: v.dependency for v in example_report.critical_variables}
        assert got == {
            "r": DependencyType.WAR,
            "a": DependencyType.RAPO,
            "sum": DependencyType.OUTCOME,
            "it": DependencyType.INDEX,
        }

    def test_read_only_and_write_first_variables_not_critical(self, example_report):
        assert example_report.find("s") is None
        assert example_report.find("b") is None

    def test_induction_excluded_from_war(self, example_report):
        it = example_report.find("it")
        assert it.dependency is DependencyType.INDEX

    def test_classification_without_induction(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        critical = classify_variables(example_preprocessing, rw, induction=None)
        names = {v.name for v in critical}
        assert "it" not in names
        assert {"r", "a", "sum"} <= names

    def test_induction_info_used_for_size(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        info = VariableInfo(name="it", base_address=0x42, size_bytes=4,
                            element_bits=32, is_array=False, is_global=False)
        critical = classify_variables(example_preprocessing, rw,
                                      induction="it", induction_info=info)
        index_var = [v for v in critical if v.dependency is DependencyType.INDEX][0]
        assert index_var.size_bytes == 4
        assert index_var.base_address == 0x42

    def test_critical_variable_sizes_positive(self, example_report):
        for variable in example_report.critical_variables:
            assert variable.size_bytes > 0

    def test_checkpoint_bytes_is_sum_of_sizes(self, example_report):
        assert example_report.checkpoint_bytes() == sum(
            v.size_bytes for v in example_report.critical_variables)


class TestRecursiveParamBindings:
    """Regression: recursive (or repeated) calls to the same callee must not
    clobber the outer activation's (callee, parameter) binding — the analysis
    keeps a per-callee binding stack pushed on ``Call``, popped on ``Ret``."""

    A, B = 0x1000, 0x1010
    OUTER_SLOT, INNER_SLOT = 0x7000, 0x7100
    SPEC = MainLoopSpec(function="main", start_line=10, end_line=20)

    def _trace(self):
        mk, op = _rec, _operand
        def alloca(i, fn, ln, name, addr):
            return make_alloca_record(name, addr, bits=64, function=fn,
                                      dyn_id=i, line=ln)
        records = [
            # main's locals, touched before the loop
            alloca(1, "main", 2, "a", self.A),
            alloca(2, "main", 3, "b", self.B),
            mk(3, Opcode.STORE, "main", 4,
               operands=[op("1", ""), op("2", "a", address=self.A)]),
            mk(4, Opcode.STORE, "main", 5,
               operands=[op("1", ""), op("2", "b", address=self.B)]),
            # loop extent opens; outer call binds p -> a
            mk(5, Opcode.CALL, "main", 10,
               operands=[op("1", "10", address=self.A, is_register=True),
                         op("p1", "p", address=self.A)],
               callee="rec"),
            alloca(6, "rec", 30, "pslot", self.OUTER_SLOT),
            # recursive call binds p -> b (must shadow, not clobber)
            mk(7, Opcode.CALL, "rec", 31,
               operands=[op("1", "3", address=self.B, is_register=True),
                         op("p1", "p", address=self.B)],
               callee="rec"),
            alloca(8, "rec", 30, "pslot", self.INNER_SLOT),
            # inner activation spills its parameter: p -> b
            mk(9, Opcode.STORE, "rec", 30,
               operands=[op("1", "p", address=self.B),
                         op("2", "pslot", address=self.INNER_SLOT)]),
            mk(10, Opcode.RET, "rec", 32),
            # OUTER activation spills after the inner call returned: the
            # binding must still be p -> a (the flat last-wins dict said b)
            mk(11, Opcode.STORE, "rec", 33,
               operands=[op("1", "p", address=self.A),
                         op("2", "pslot", address=self.OUTER_SLOT)]),
            mk(12, Opcode.RET, "rec", 34),
            # loop extent closes
            mk(13, Opcode.STORE, "main", 20,
               operands=[op("1", ""), op("2", "a", address=self.A)]),
        ]
        return Trace(module_name="recursion", records=records)

    @pytest.fixture()
    def recursion_dependency(self):
        trace = self._trace()
        preprocessing = identify_mli_variables(trace, self.SPEC)
        return DependencyAnalysis(preprocessing).run()

    def test_outer_spill_binds_to_outer_argument(self, recursion_dependency):
        ddg = recursion_dependency.complete_ddg
        a_key, b_key = f"a@{self.A:#x}", f"b@{self.B:#x}"
        outer_slot = f"pslot@{self.OUTER_SLOT:#x}"
        inner_slot = f"pslot@{self.INNER_SLOT:#x}"
        assert ddg.parents_of(outer_slot) == {a_key}
        assert ddg.parents_of(inner_slot) == {b_key}

    def test_binding_frames_are_popped_on_return(self, recursion_dependency):
        # after both activations returned the flat reporting view keeps the
        # last observed binding, but no live frame remains
        assert recursion_dependency.param_bindings[("rec", "p")].startswith("b@")
        analysis_map = recursion_dependency.variable_map
        assert analysis_map.open_scope_count == 0
        # both activations' slots were retired from address resolution
        assert analysis_map.resolve(self.OUTER_SLOT) is None
        assert analysis_map.resolve(self.INNER_SLOT) is None


class TestUnboundParameterDoesNotLeak:
    """Regression: an activation whose argument is a constant (non-register)
    leaves the parameter explicitly *unbound*; the spill inside that
    activation must not fall back to a previous activation's binding."""

    A = 0x1000
    SLOT1, SLOT2 = 0x7000, 0x7100
    SPEC = MainLoopSpec(function="main", start_line=10, end_line=20)

    def _trace(self):
        mk, op = _rec, _operand
        def alloca(i, fn, ln, name, addr):
            return make_alloca_record(name, addr, bits=64, function=fn,
                                      dyn_id=i, line=ln)
        records = [
            alloca(1, "main", 2, "a", self.A),
            mk(2, Opcode.STORE, "main", 3,
               operands=[op("1", ""), op("2", "a", address=self.A)]),
            # first call binds p -> a (register argument carrying a's address)
            mk(3, Opcode.CALL, "main", 10,
               operands=[op("1", "10", address=self.A, is_register=True),
                         op("p1", "p", address=self.A)],
               callee="helper"),
            alloca(4, "helper", 30, "pslot", self.SLOT1),
            mk(5, Opcode.STORE, "helper", 30,
               operands=[op("1", "p", address=self.A),
                         op("2", "pslot", address=self.SLOT1)]),
            mk(6, Opcode.RET, "helper", 31),
            # second call passes a constant: p is unbound for this activation
            mk(7, Opcode.CALL, "main", 11,
               operands=[op("1", "", value=5), op("p1", "p")],
               callee="helper"),
            alloca(8, "helper", 30, "pslot", self.SLOT2),
            mk(9, Opcode.STORE, "helper", 30,
               operands=[op("1", "p", value=5),
                         op("2", "pslot", address=self.SLOT2)]),
            mk(10, Opcode.RET, "helper", 31),
            mk(11, Opcode.STORE, "main", 20,
               operands=[op("1", ""), op("2", "a", address=self.A)]),
        ]
        return Trace(module_name="unbound", records=records)

    def test_constant_argument_activation_gets_no_stale_edge(self):
        trace = self._trace()
        preprocessing = identify_mli_variables(trace, self.SPEC)
        dependency = DependencyAnalysis(preprocessing).run()
        ddg = dependency.complete_ddg
        a_key = f"a@{self.A:#x}"
        # first activation: spill connects a to its slot
        assert ddg.parents_of(f"pslot@{self.SLOT1:#x}") == {a_key}
        # second activation: p is explicitly unbound — no leaked edge from a
        assert ddg.parents_of(f"pslot@{self.SLOT2:#x}") == set()
