"""Unit tests for complete-DDG construction, R/W extraction and classification."""

import pytest

from repro.core import MainLoopSpec
from repro.core.classify import classify_variables
from repro.core.dependency import DependencyAnalysis
from repro.core.ddg import NodeKind
from repro.core.preprocessing import identify_mli_variables
from repro.core.report import DependencyType
from repro.core.rwdeps import AccessKind, extract_rw_dependencies
from repro.core.varmap import VariableInfo


@pytest.fixture(scope="module")
def example_dependency(example_preprocessing):
    return DependencyAnalysis(example_preprocessing).run()


class TestDependencyAnalysis:
    def test_complete_ddg_contains_all_node_kinds(self, example_dependency):
        kinds = {node.kind for node in example_dependency.complete_ddg.nodes()}
        assert NodeKind.MLI in kinds
        assert NodeKind.REGISTER in kinds
        assert NodeKind.LOCAL in kinds

    def test_mli_nodes_present(self, example_dependency, example_preprocessing):
        labels = {node.label for node in example_dependency.complete_ddg.mli_nodes()}
        assert labels == set(example_preprocessing.mli_names())

    def test_reg_var_map_populated(self, example_dependency):
        assert len(example_dependency.reg_var_map) > 0

    def test_reg_reg_map_populated(self, example_dependency):
        assert len(example_dependency.reg_reg_map) > 0

    def test_param_binding_links_argument_to_parameter(self, example_dependency):
        # foo(a, b): parameter p of foo must be bound to the caller's `a`
        # (reg-var triplet correlation of paper Fig. 6b).
        bindings = example_dependency.param_bindings
        assert ("foo", "p") in bindings
        assert bindings[("foo", "p")].startswith("a@")
        assert bindings[("foo", "q")].startswith("b@")

    def test_selective_iteration_skips_control_flow(self, example_dependency,
                                                    example_preprocessing):
        inspected = example_dependency.inspected_records
        total_inside = len(example_preprocessing.regions.inside)
        assert 0 < inspected < total_inside

    def test_dependency_paths_from_r_to_a_to_sum(self, example_dependency,
                                                 example_preprocessing):
        ddg = example_dependency.complete_ddg
        keys = {var.name: var.key for var in example_preprocessing.mli_variables}
        assert keys["r"] in ddg.ancestors_of(keys["a"])
        assert keys["a"] in ddg.ancestors_of(keys["sum"])
        # sum never feeds anything
        assert ddg.children_of(keys["sum"]) == set()


class TestRWExtraction:
    def test_example_sequence_prefix_matches_figure5e(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        prefix = [str(event) for event in rw.loop_events[:6]]
        # Paper Fig. 5(e): s-Write; s-Read; r-Read; a-Write; a-Read; b-Write
        assert prefix == ["s-Write", "s-Read", "r-Read", "a-Write", "a-Read",
                          "b-Write"]

    def test_events_sorted_by_dynamic_id(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        ids = [event.dyn_id for event in rw.loop_events]
        assert ids == sorted(ids)

    def test_post_loop_read_of_sum(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        sum_key = example_preprocessing.find("sum").key
        post = rw.post_events_for(sum_key)
        assert post and post[0].kind is AccessKind.READ

    def test_element_offsets_recorded_for_arrays(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        a_key = example_preprocessing.find("a").key
        offsets = {event.element_offset for event in rw.events_for(a_key)}
        assert len(offsets) == 10  # a[0] .. a[9] all touched over the run

    def test_sequence_string_format(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        text = rw.sequence_string(limit=3)
        assert text.startswith("1: s-Write; 2: s-Read; 3: r-Read")


class TestClassification:
    def test_example_classification(self, example_report):
        got = {v.name: v.dependency for v in example_report.critical_variables}
        assert got == {
            "r": DependencyType.WAR,
            "a": DependencyType.RAPO,
            "sum": DependencyType.OUTCOME,
            "it": DependencyType.INDEX,
        }

    def test_read_only_and_write_first_variables_not_critical(self, example_report):
        assert example_report.find("s") is None
        assert example_report.find("b") is None

    def test_induction_excluded_from_war(self, example_report):
        it = example_report.find("it")
        assert it.dependency is DependencyType.INDEX

    def test_classification_without_induction(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        critical = classify_variables(example_preprocessing, rw, induction=None)
        names = {v.name for v in critical}
        assert "it" not in names
        assert {"r", "a", "sum"} <= names

    def test_induction_info_used_for_size(self, example_preprocessing):
        rw = extract_rw_dependencies(example_preprocessing)
        info = VariableInfo(name="it", base_address=0x42, size_bytes=4,
                            element_bits=32, is_array=False, is_global=False)
        critical = classify_variables(example_preprocessing, rw,
                                      induction="it", induction_info=info)
        index_var = [v for v in critical if v.dependency is DependencyType.INDEX][0]
        assert index_var.size_bytes == 4
        assert index_var.base_address == 0x42

    def test_critical_variable_sizes_positive(self, example_report):
        for variable in example_report.critical_variables:
            assert variable.size_bytes > 0

    def test_checkpoint_bytes_is_sum_of_sizes(self, example_report):
        assert example_report.checkpoint_bytes() == sum(
            v.size_bytes for v in example_report.critical_variables)
