"""Unit/integration tests for the AutoCheck pipeline and its report object."""

import pytest

from repro.api import autocheck_module, autocheck_source
from repro.core import AutoCheck, AutoCheckConfig, MainLoopSpec
from repro.core.report import DependencyType
from repro.trace.textio import write_trace_file


class TestPipeline:
    def test_requires_trace_or_path(self, example_spec):
        with pytest.raises(ValueError):
            AutoCheck(AutoCheckConfig(main_loop=example_spec))

    def test_run_from_in_memory_trace(self, example_trace, example_spec):
        report = AutoCheck(AutoCheckConfig(main_loop=example_spec),
                           trace=example_trace).run()
        assert set(report.names()) == {"r", "a", "sum", "it"}

    def test_run_from_trace_file(self, example_trace, example_spec, tmp_path):
        path = str(tmp_path / "ex.trace")
        write_trace_file(example_trace, path)
        report = AutoCheck(AutoCheckConfig(main_loop=example_spec),
                           trace_path=path).run()
        assert set(report.names()) == {"r", "a", "sum", "it"}

    def test_induction_override(self, example_trace, example_spec):
        config = AutoCheckConfig(main_loop=example_spec, induction_variable="r")
        report = AutoCheck(config, trace=example_trace).run()
        assert report.induction_variable == "r"
        assert report.find("r").dependency is DependencyType.INDEX

    def test_dynamic_induction_fallback_without_module(self, example_trace,
                                                       example_spec):
        # No module handed in -> the pipeline falls back to dynamic detection
        # on the trace and still identifies `it`.
        report = AutoCheck(AutoCheckConfig(main_loop=example_spec),
                           trace=example_trace).run()
        assert report.induction_variable == "it"

    def test_static_induction_with_module(self, example_trace, example_spec,
                                          example_module):
        report = AutoCheck(AutoCheckConfig(main_loop=example_spec),
                           trace=example_trace, module=example_module).run()
        assert report.induction_variable == "it"

    def test_timings_cover_three_stages(self, example_report):
        # Default (fused) pipeline: one engine walk replaces the separate
        # dependency-analysis iteration.
        stages = set(example_report.timings.stages)
        assert stages == {"preprocessing", "fused_analysis",
                          "identify_variables"}
        assert example_report.timings.total > 0

    def test_multipass_timings_cover_legacy_stages(self, example_trace,
                                                   example_spec):
        report = AutoCheck(
            AutoCheckConfig(main_loop=example_spec,
                            analysis_engine="multipass"),
            trace=example_trace).run()
        assert set(report.timings.stages) == {
            "preprocessing", "dependency_analysis", "identify_variables"}

    def test_fused_walk_reports_throughput(self, example_report,
                                           example_trace):
        timings = example_report.timings
        assert timings.get_count("fused_analysis") == len(example_trace.records)
        rate = timings.records_per_second("fused_analysis")
        assert rate is None or rate > 0

    def test_trace_stats(self, example_report, example_trace):
        stats = example_report.trace_stats
        assert stats.record_count == len(example_trace.records)
        assert stats.before_count + stats.inside_count + stats.after_count == \
            stats.record_count
        assert stats.inside_count > stats.after_count


class TestReport:
    def test_dependency_string_format(self, example_report):
        text = example_report.dependency_string()
        assert "r (WAR)" in text
        assert "it (Index)" in text

    def test_by_type_grouping(self, example_report):
        grouped = example_report.by_type()
        assert [v.name for v in grouped[DependencyType.WAR]] == ["r"]
        assert [v.name for v in grouped[DependencyType.RAPO]] == ["a"]

    def test_find_missing_returns_none(self, example_report):
        assert example_report.find("nonexistent") is None

    def test_summary_mentions_all_critical_variables(self, example_report):
        summary = example_report.summary()
        for variable in example_report.critical_variables:
            assert variable.name in summary
        assert "Checkpoint size" in summary

    def test_str_of_critical_variable(self, example_report):
        assert str(example_report.find("r")) == "r (WAR)"


class TestConvenienceAPI:
    def test_autocheck_source_end_to_end(self, example_source, example_spec):
        report = autocheck_source(example_source, example_spec)
        assert set(report.names()) == {"r", "a", "sum", "it"}

    def test_autocheck_module_end_to_end(self, example_module, example_spec):
        report = autocheck_module(example_module, example_spec)
        assert set(report.names()) == {"r", "a", "sum", "it"}

    def test_seed_does_not_change_result(self, example_source, example_spec):
        first = autocheck_source(example_source, example_spec, seed=1)
        second = autocheck_source(example_source, example_spec, seed=99)
        assert first.dependency_string() == second.dependency_string()

    def test_simple_loop_program(self, simple_loop_source):
        """A second, structurally different program: both the in-place
        updated array `data` and the accumulator `total` are read before
        being overwritten (WAR), while the read-only bound `limit` is not
        critical."""
        source = simple_loop_source
        lines = source.splitlines()
        start = next(i + 1 for i, line in enumerate(lines)
                     if "for (int it" in line)
        end = next(i + 1 for i, line in enumerate(lines)
                   if line.strip() == "}" and i > start)
        report = autocheck_source(source, MainLoopSpec("main", start, end))
        got = {v.name: v.dependency.value for v in report.critical_variables}
        assert got["total"] == "WAR"
        assert got["data"] == "WAR"
        assert got["it"] == "Index"
        assert "limit" not in got
