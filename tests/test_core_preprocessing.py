"""Unit tests for trace partitioning and MLI identification (paper Sec. IV-A)."""

import pytest

from repro.core import MainLoopSpec, partition_trace
from repro.core.errors import AnalysisError


class TestPartitioning:
    def test_partition_covers_all_records(self, example_trace, example_spec):
        regions = partition_trace(example_trace, example_spec)
        assert regions.total_records == len(example_trace.records)

    def test_inside_region_within_loop_lines(self, example_trace, example_spec):
        regions = partition_trace(example_trace, example_spec)
        first, last = regions.inside[0], regions.inside[-1]
        assert first.function == "main"
        assert example_spec.contains_line(first.line)
        assert last.function == "main"
        assert example_spec.contains_line(last.line)

    def test_before_region_precedes_loop(self, example_trace, example_spec):
        regions = partition_trace(example_trace, example_spec)
        assert all(r.dyn_id < regions.first_loop_dyn_id for r in regions.before)

    def test_after_region_contains_final_print(self, example_trace, example_spec):
        regions = partition_trace(example_trace, example_spec)
        assert any(r.is_call and r.callee == "print" for r in regions.after)

    def test_callee_records_are_inside_region(self, example_trace, example_spec):
        regions = partition_trace(example_trace, example_spec)
        assert any(r.function == "foo" for r in regions.inside)
        assert not any(r.function == "foo" for r in regions.before)

    def test_bad_range_raises(self, example_trace):
        spec = MainLoopSpec(function="main", start_line=500, end_line=600)
        with pytest.raises(AnalysisError):
            partition_trace(example_trace, spec)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            MainLoopSpec(function="main", start_line=10, end_line=5)

    def test_mclr_string(self, example_spec):
        assert example_spec.mclr == f"{example_spec.start_line}-{example_spec.end_line}"


class TestMLIIdentification:
    def test_example_mli_set_matches_paper(self, example_preprocessing):
        # Paper Sec. IV-A: "'a', 'b', 'sum', 's', 'r' are the MLI variables".
        assert set(example_preprocessing.mli_names()) == {"a", "b", "sum", "s", "r"}

    def test_loop_local_not_mli(self, example_preprocessing):
        assert example_preprocessing.find("m") is None

    def test_induction_variable_not_mli(self, example_preprocessing):
        # `it` is defined by the for-init inside the loop region, so it is not
        # an MLI variable (it is checkpointed through the Index rule instead).
        assert example_preprocessing.find("it") is None

    def test_callee_locals_not_mli(self, example_preprocessing):
        for name in ("p", "q", "i"):
            assert example_preprocessing.find(name) is None

    def test_mli_metadata(self, example_preprocessing):
        a = example_preprocessing.find("a")
        assert a is not None
        assert a.is_array and a.size_bytes == 40
        r = example_preprocessing.find("r")
        assert not r.is_array and r.size_bytes == 4

    def test_before_and_inside_collections_nonempty(self, example_preprocessing):
        assert example_preprocessing.before_variables
        assert example_preprocessing.inside_variables

    def test_call_bypass_excludes_same_named_callee_locals(self):
        """Challenge 1/2: a callee local named like an MLI variable must not
        be matched; address-based identity keeps them apart."""
        from repro.api import autocheck_source
        from repro.apps.base import find_mclr

        source = """\
double total;

void helper() {
    double total = 5.0;      // same name as the global, different storage
    total = total * 2.0;
}

int main() {
    total = 1.0;
    double keep = 2.0;
    helper();
    for (int it = 0; it < 4; ++it) {     // @mclr-begin
        helper();
        total = total + keep;
    }                                     // @mclr-end
    print(total);
    return 0;
}
"""
        start, end = find_mclr(source)
        report = autocheck_source(source, MainLoopSpec("main", start, end))
        assert "total" in report.mli_variable_names
        # the helper-local `total` contributes nothing; keep is read-only
        assert report.find("total").dependency.value == "WAR"
        assert report.find("keep") is None

    def test_global_access_in_calls_option(self):
        """The FT special case (paper Sec. V-B): a global only touched inside
        functions called from the loop is found only when the option is on."""
        from repro.api import autocheck_source
        from repro.apps.base import find_mclr

        source = """\
double hidden[8];

void update() {
    for (int i = 0; i < 8; ++i) {
        hidden[i] = hidden[i] * 1.5;
    }
}

int main() {
    for (int i = 0; i < 8; ++i) {
        hidden[i] = 1.0;
    }
    double watch = 0.0;
    for (int kt = 0; kt < 4; ++kt) {      // @mclr-begin
        update();
        watch = watch + 1.0;
    }                                      // @mclr-end
    print(hidden[0], watch);
    return 0;
}
"""
        start, end = find_mclr(source)
        spec = MainLoopSpec("main", start, end)
        without = autocheck_source(source, spec)
        assert "hidden" not in without.mli_variable_names
        with_option = autocheck_source(source, spec,
                                       include_global_accesses_in_calls=True)
        assert "hidden" in with_option.mli_variable_names
        assert with_option.find("hidden").dependency.value == "WAR"
