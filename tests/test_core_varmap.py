"""Unit tests for the address-interval variable map."""

import pytest

from repro.core.varmap import VariableInfo, VariableMap, build_variable_map
from repro.trace.records import GlobalSymbol


def info(name, base, size=32, elem_bits=64, is_array=True, is_global=False,
         function="main"):
    return VariableInfo(name=name, base_address=base, size_bytes=size,
                        element_bits=elem_bits, is_array=is_array,
                        is_global=is_global, function=function)


class TestVariableInfo:
    def test_extent_properties(self):
        v = info("u", 0x1000, size=80, elem_bits=64)
        assert v.end_address == 0x1050
        assert v.element_bytes == 8
        assert v.element_count == 10

    def test_contains_and_offset(self):
        v = info("u", 0x1000, size=80, elem_bits=64)
        assert v.contains(0x1000)
        assert v.contains(0x1048)
        assert not v.contains(0x1050)
        assert v.element_offset(0x1010) == 2

    def test_key_is_unique_per_allocation(self):
        a = info("x", 0x1000)
        b = info("x", 0x2000)
        assert a.key != b.key


class TestVariableMap:
    def test_resolve_exact_and_interior_addresses(self):
        varmap = VariableMap()
        v = varmap.add(info("u", 0x1000, size=80, elem_bits=64))
        assert varmap.resolve(0x1000) is v
        assert varmap.resolve(0x1000 + 3 * 8) is v
        assert varmap.resolve(0x2000) is None
        assert varmap.resolve(None) is None

    def test_latest_registration_shadows_older(self):
        varmap = VariableMap()
        varmap.add(info("old", 0x1000, size=32))
        newer = varmap.add(info("new", 0x1000, size=32))
        assert varmap.resolve(0x1000) is newer

    def test_by_name_and_latest(self):
        varmap = VariableMap()
        first = varmap.add(info("i", 0x1000, size=4, elem_bits=32, is_array=False))
        second = varmap.add(info("i", 0x2000, size=4, elem_bits=32, is_array=False))
        assert varmap.by_name("i") == [first, second]
        assert varmap.latest_by_name("i") is second
        assert varmap.latest_by_name("missing") is None

    def test_globals_listing_and_iteration(self):
        varmap = VariableMap()
        varmap.add_global_symbol(GlobalSymbol("g", 0x100, 8, 64, False))
        varmap.add(info("local", 0x9000))
        assert [v.name for v in varmap.globals()] == ["g"]
        assert len(varmap) == 2
        assert {v.name for v in varmap} == {"g", "local"}


class TestBuildFromTrace:
    def test_globals_and_main_allocas_indexed(self, example_trace):
        varmap = build_variable_map(example_trace.globals, example_trace.records,
                                    function="main")
        # the example has no globals but main allocates a, b, sum, s, r, i, it, m
        names = {v.name for v in varmap}
        assert {"a", "b", "sum", "s", "r", "it"} <= names
        a_info = varmap.latest_by_name("a")
        assert a_info.is_array and a_info.size_bytes == 40  # int a[10]

    def test_function_filter_excludes_callee_locals(self, example_trace):
        only_main = build_variable_map(example_trace.globals, example_trace.records,
                                       function="main")
        everything = build_variable_map(example_trace.globals, example_trace.records,
                                        function=None)
        # foo's parameter allocas (p, q) and its loop variable i appear only
        # in the unfiltered map.
        assert only_main.latest_by_name("p") is None
        assert everything.latest_by_name("p") is not None
        assert len(everything) > len(only_main)

    def test_alloca_record_sizes(self, example_trace):
        varmap = build_variable_map(example_trace.globals, example_trace.records,
                                    function="main")
        sum_info = varmap.latest_by_name("sum")
        assert sum_info.size_bytes == 4
        assert not sum_info.is_array

    def test_resolve_element_address_of_array(self, example_trace):
        varmap = build_variable_map(example_trace.globals, example_trace.records,
                                    function="main")
        a_info = varmap.latest_by_name("a")
        third_element = a_info.base_address + 2 * a_info.element_bytes
        assert varmap.resolve(third_element) is a_info
        assert a_info.element_offset(third_element) == 2
