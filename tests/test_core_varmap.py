"""Unit tests for the address-interval variable map."""

from conftest import make_alloca_record

from repro.core.varmap import VariableInfo, VariableMap, build_variable_map
from repro.trace.records import GlobalSymbol


def info(name, base, size=32, elem_bits=64, is_array=True, is_global=False,
         function="main"):
    return VariableInfo(name=name, base_address=base, size_bytes=size,
                        element_bits=elem_bits, is_array=is_array,
                        is_global=is_global, function=function)


class TestVariableInfo:
    def test_extent_properties(self):
        v = info("u", 0x1000, size=80, elem_bits=64)
        assert v.end_address == 0x1050
        assert v.element_bytes == 8
        assert v.element_count == 10

    def test_contains_and_offset(self):
        v = info("u", 0x1000, size=80, elem_bits=64)
        assert v.contains(0x1000)
        assert v.contains(0x1048)
        assert not v.contains(0x1050)
        assert v.element_offset(0x1010) == 2

    def test_key_is_unique_per_allocation(self):
        a = info("x", 0x1000)
        b = info("x", 0x2000)
        assert a.key != b.key


class TestVariableMap:
    def test_resolve_exact_and_interior_addresses(self):
        varmap = VariableMap()
        v = varmap.add(info("u", 0x1000, size=80, elem_bits=64))
        assert varmap.resolve(0x1000) is v
        assert varmap.resolve(0x1000 + 3 * 8) is v
        assert varmap.resolve(0x2000) is None
        assert varmap.resolve(None) is None

    def test_latest_registration_shadows_older(self):
        varmap = VariableMap()
        varmap.add(info("old", 0x1000, size=32))
        newer = varmap.add(info("new", 0x1000, size=32))
        assert varmap.resolve(0x1000) is newer

    def test_by_name_and_latest(self):
        varmap = VariableMap()
        first = varmap.add(info("i", 0x1000, size=4, elem_bits=32, is_array=False))
        second = varmap.add(info("i", 0x2000, size=4, elem_bits=32, is_array=False))
        assert varmap.by_name("i") == [first, second]
        assert varmap.latest_by_name("i") is second
        assert varmap.latest_by_name("missing") is None

    def test_globals_listing_and_iteration(self):
        varmap = VariableMap()
        varmap.add_global_symbol(GlobalSymbol("g", 0x100, 8, 64, False))
        varmap.add(info("local", 0x9000))
        assert [v.name for v in varmap.globals()] == ["g"]
        assert len(varmap) == 2
        assert {v.name for v in varmap} == {"g", "local"}


class TestIntervalStoreShadowing:
    def test_stale_shadow_loses_even_on_its_element_boundary(self):
        """Regression for the dict-first ``resolve``: an i32-array boundary
        address inside a newer i64 allocation must attribute to the newer
        (live) allocation, not the stale one whose element grid it sits on.

        The old implementation consulted the per-element-address dict before
        the last-registered-wins scan; ``0x1004`` stayed indexed to the dead
        i32 array (the i64 array only re-indexed 0x1000/0x1008/...), so the
        stale allocation won — exactly the stack-address-reuse
        misattribution of the paper's Challenge 2.
        """
        varmap = VariableMap()
        varmap.add(info("stale", 0x1000, size=16, elem_bits=32))
        fresh = varmap.add(info("fresh", 0x1000, size=16, elem_bits=64))
        assert varmap.resolve(0x1004).name == "fresh"
        assert varmap.resolve(0x1004) is fresh
        assert varmap.resolve(0x1000) is fresh
        assert varmap.resolve(0x100C) is fresh

    def test_partial_overlap_splits_old_interval(self):
        varmap = VariableMap()
        old = varmap.add(info("old", 0x1000, size=0x40, elem_bits=64))
        new = varmap.add(info("new", 0x1010, size=0x10, elem_bits=32))
        # left remainder, shadowed middle, right remainder
        assert varmap.resolve(0x1008) is old
        assert varmap.resolve(0x1010) is new
        assert varmap.resolve(0x101C) is new
        assert varmap.resolve(0x1020) is old
        assert varmap.resolve(0x103F) is old
        assert varmap.resolve(0x1040) is None
        # offsets stay relative to each owner's base
        assert varmap.resolve_access(0x1020) == (old, 4)
        assert varmap.resolve_access(0x1014) == (new, 1)

    def test_new_allocation_spanning_several_old_ones(self):
        varmap = VariableMap()
        varmap.add(info("a", 0x1000, size=0x10))
        varmap.add(info("b", 0x1010, size=0x10))
        varmap.add(info("c", 0x1020, size=0x10))
        wide = varmap.add(info("wide", 0x1008, size=0x20))
        assert varmap.resolve(0x1000).name == "a"
        for address in (0x1008, 0x1010, 0x1018, 0x1020, 0x1027):
            assert varmap.resolve(address) is wide
        assert varmap.resolve(0x1028).name == "c"
        # history keeps every registration even when fully shadowed
        assert [v.name for v in varmap] == ["a", "b", "c", "wide"]

    def test_resolve_interior_byte_addresses(self):
        varmap = VariableMap()
        v = varmap.add(info("u", 0x1000, size=80, elem_bits=64))
        for address in range(0x1000, 0x1050):
            assert varmap.resolve(address) is v
        assert varmap.resolve(0xFFF) is None
        assert varmap.resolve(0x1050) is None

    def test_index_entry_count_is_o_intervals(self):
        varmap = VariableMap()
        varmap.add(info("huge", 0x10000, size=8 * 1_000_000, elem_bits=64))
        assert varmap.index_entry_count == 1
        varmap.add(info("tiny", 0x20000 + 8 * 1_000_000, size=8))
        assert varmap.index_entry_count == 2

    def test_live_intervals_are_sorted_and_disjoint(self):
        varmap = VariableMap()
        varmap.add(info("a", 0x1000, size=0x20))
        varmap.add(info("b", 0x1010, size=0x20))
        varmap.add(info("c", 0x1008, size=0x08))
        segments = varmap.live_intervals()
        for (start, end, _owner) in segments:
            assert start < end
        for (_, end_a, _), (start_b, _, _) in zip(segments, segments[1:]):
            assert end_a <= start_b


class TestScopes:
    def test_exit_scope_retires_callee_allocas(self):
        varmap = VariableMap()
        keeper = varmap.add(info("keeper", 0x2000, size=0x10))
        varmap.enter_scope("foo")
        varmap.add(info("scratch", 0x3000, size=0x10, function="foo"))
        assert varmap.resolve(0x3008).name == "scratch"
        varmap.exit_scope("foo")
        assert varmap.resolve(0x3008) is None
        assert varmap.resolve(0x2000) is keeper
        # retirement only affects address resolution, not the history
        assert varmap.latest_by_name("scratch") is not None

    def test_recursive_scopes_retire_innermost_first(self):
        varmap = VariableMap()
        varmap.enter_scope("rec")
        outer = varmap.add(info("local", 0x3000, size=8, function="rec"))
        varmap.enter_scope("rec")
        inner = varmap.add(info("local", 0x4000, size=8, function="rec"))
        assert varmap.resolve(0x4000) is inner
        varmap.exit_scope("rec")
        assert varmap.resolve(0x4000) is None
        assert varmap.resolve(0x3000) is outer
        varmap.exit_scope("rec")
        assert varmap.resolve(0x3000) is None
        assert varmap.open_scope_count == 0

    def test_exit_unknown_function_is_noop(self):
        varmap = VariableMap()
        varmap.enter_scope("foo")
        varmap.add(info("x", 0x3000, size=8, function="foo"))
        varmap.exit_scope("main")
        assert varmap.resolve(0x3000) is not None
        assert varmap.open_scope_count == 1

    def test_globals_never_scoped(self):
        varmap = VariableMap()
        varmap.enter_scope("foo")
        varmap.add_global_symbol(GlobalSymbol("g", 0x100, 8, 64, False))
        varmap.exit_scope("foo")
        assert varmap.resolve(0x100).name == "g"

    def test_retired_allocation_cannot_shadow_later_ones(self):
        varmap = VariableMap()
        varmap.enter_scope("first")
        varmap.add(info("dead", 0x7000, size=0x20, elem_bits=32,
                        function="first"))
        varmap.exit_scope("first")
        varmap.enter_scope("second")
        live = varmap.add(info("live", 0x7000, size=0x10, elem_bits=64,
                               function="second"))
        # 0x7014 was the dead i32 array's element 5; it is past the live
        # allocation's end, and the dead frame must not absorb it.
        assert varmap.resolve(0x7008) is live
        assert varmap.resolve(0x7014) is None


class TestShadowRestore:
    """Retiring a registration restores the ranges it had shadowed."""

    def test_retire_restores_shadowed_range_to_live_owner(self):
        varmap = VariableMap()
        arr = varmap.add(info("arr", 0x1000, size=0x10, elem_bits=32))
        varmap.enter_scope("g")
        tmp = varmap.add(info("tmp", 0x1008, size=4, function="g"))
        assert varmap.resolve(0x1008) is tmp
        varmap.exit_scope("g")
        # the interior hole left by tmp's eviction must be healed
        assert varmap.resolve(0x1008) is arr
        assert varmap.resolve(0x1000) is arr
        assert varmap.resolve(0x100f) is arr
        assert varmap.resolve_access(0x1008) == (arr, 2)

    def test_full_eviction_is_restored(self):
        varmap = VariableMap()
        under = varmap.add(info("under", 0x1000, size=8))
        varmap.enter_scope("g")
        varmap.add(info("over", 0x0ff8, size=0x20, function="g"))
        assert varmap.resolve(0x1004).name == "over"
        varmap.exit_scope("g")
        assert varmap.resolve(0x1000) is under
        assert varmap.resolve(0x1007) is under
        assert varmap.resolve(0x0ff8) is None   # over's own extent is gone
        assert varmap.resolve(0x1008) is None

    def test_nested_shadows_unwind_in_scope_order(self):
        varmap = VariableMap()
        base = varmap.add(info("base", 0x1000, size=0x10))
        varmap.enter_scope("outer")
        mid = varmap.add(info("mid", 0x1004, size=8, function="outer"))
        varmap.enter_scope("inner")
        top = varmap.add(info("top", 0x1006, size=2, function="inner"))
        assert varmap.resolve(0x1006) is top
        varmap.exit_scope("inner")
        assert varmap.resolve(0x1006) is mid
        varmap.exit_scope("outer")
        assert varmap.resolve(0x1006) is base
        assert varmap.resolve(0x1004) is base

    def test_restore_skips_retired_owners(self):
        varmap = VariableMap()
        varmap.enter_scope("first")
        varmap.add(info("dead", 0x1000, size=8, function="first"))
        varmap.exit_scope("first")
        varmap.enter_scope("second")
        varmap.add(info("live", 0x1000, size=8, function="second"))
        varmap.exit_scope("second")
        # `live` shadowed nothing live (dead was already retired), and dead
        # frames must not be resurrected
        assert varmap.resolve(0x1000) is None

    def test_restore_leaves_still_live_shadowers_untouched(self):
        varmap = VariableMap()
        base = varmap.add(info("base", 0x1000, size=0x10))
        varmap.enter_scope("outer")
        varmap.add(info("mid", 0x1000, size=0x10, function="outer"))
        varmap.enter_scope("inner")
        top = varmap.add(info("top", 0x1008, size=4, function="inner"))
        # close the *outer* scope while inner is still open (unbalanced on
        # purpose): exit_scope retires inner first, then outer, so both
        # restores run and base gets its full range back
        varmap.exit_scope("outer")
        assert varmap.resolve(0x1004) is base
        assert varmap.resolve(0x1008) is base
        assert varmap.resolve(0x1008) is not top


class TestSubByteElements:
    def test_i1_alloca_gets_whole_byte_interval(self):
        """Regression: ``count * (element_bits // 8)`` gave i1 booleans a
        zero-byte, unresolvable interval; ceil division gives one byte."""
        varmap = VariableMap()
        registered = varmap.add_alloca_record(
            make_alloca_record("flag", 0x5000, count=1, bits=1))
        assert registered.size_bytes == 1
        assert varmap.resolve(0x5000) is registered
        assert varmap.resolve(0x5001) is None

    def test_i1_array_sizes_by_element_bytes(self):
        varmap = VariableMap()
        registered = varmap.add_alloca_record(
            make_alloca_record("flags", 0x5000, count=8, bits=1))
        assert registered.size_bytes == 8
        assert registered.element_count == 8
        assert varmap.resolve_access(0x5003) == (registered, 3)

    def test_whole_byte_sizes_unchanged(self):
        varmap = VariableMap()
        registered = varmap.add_alloca_record(
            make_alloca_record("v", 0x5000, count=10, bits=32))
        assert registered.size_bytes == 40
        assert registered.element_bytes == 4


class TestBuildFromTrace:
    def test_globals_and_main_allocas_indexed(self, example_trace):
        varmap = build_variable_map(example_trace.globals, example_trace.records,
                                    function="main")
        # the example has no globals but main allocates a, b, sum, s, r, i, it, m
        names = {v.name for v in varmap}
        assert {"a", "b", "sum", "s", "r", "it"} <= names
        a_info = varmap.latest_by_name("a")
        assert a_info.is_array and a_info.size_bytes == 40  # int a[10]

    def test_function_filter_excludes_callee_locals(self, example_trace):
        only_main = build_variable_map(example_trace.globals, example_trace.records,
                                       function="main")
        everything = build_variable_map(example_trace.globals, example_trace.records,
                                        function=None)
        # foo's parameter allocas (p, q) and its loop variable i appear only
        # in the unfiltered map.
        assert only_main.latest_by_name("p") is None
        assert everything.latest_by_name("p") is not None
        assert len(everything) > len(only_main)

    def test_alloca_record_sizes(self, example_trace):
        varmap = build_variable_map(example_trace.globals, example_trace.records,
                                    function="main")
        sum_info = varmap.latest_by_name("sum")
        assert sum_info.size_bytes == 4
        assert not sum_info.is_array

    def test_resolve_element_address_of_array(self, example_trace):
        varmap = build_variable_map(example_trace.globals, example_trace.records,
                                    function="main")
        a_info = varmap.latest_by_name("a")
        third_element = a_info.base_address + 2 * a_info.element_bytes
        assert varmap.resolve(third_element) is a_info
        assert a_info.element_offset(third_element) == 2

    def test_scoped_build_retires_returned_activations(self, example_trace):
        scoped = build_variable_map(example_trace.globals, example_trace.records,
                                    function=None, scoped=True)
        unscoped = build_variable_map(example_trace.globals,
                                      example_trace.records, function=None)
        # foo has returned by the end of the trace: its parameter slots are
        # in the history but retired from address resolution.
        p_info = scoped.latest_by_name("p")
        assert p_info is not None
        assert scoped.resolve(p_info.base_address) is None
        assert unscoped.resolve(p_info.base_address) is not None
        # main never returns within the trace: its allocas stay live.
        a_info = scoped.latest_by_name("a")
        assert scoped.resolve(a_info.base_address) is a_info
