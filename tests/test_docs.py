"""Documentation integrity: links and anchors in README.md and docs/.

The CI docs job runs exactly this module, so a broken relative link, a
dangling anchor, or a docs page referencing a deleted source file fails
both locally (tier-1) and in CI.
"""

from __future__ import annotations

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
REQUIRED_PAGES = ("architecture.md", "trace-format.md", "cli.md",
                  "quickstart.md", "analysis.md", "checkpoint.md",
                  "static.md", "serve.md")

#: [text](target) — excluding images and in-code parens
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
#: `code` spans and fenced blocks are stripped before link extraction
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`]*`")


def _doc_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    files.extend(os.path.join(DOCS_DIR, name)
                 for name in sorted(os.listdir(DOCS_DIR))
                 if name.endswith(".md"))
    return files


def _links(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    text = _FENCE.sub("", text)
    text = _INLINE_CODE.sub("", text)
    return _LINK.findall(text)


def _github_slug(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def _anchors(path):
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if not in_fence and line.startswith("#"):
                anchors.add(_github_slug(line.lstrip("#")))
    return anchors


def test_all_required_docs_pages_exist():
    for name in REQUIRED_PAGES:
        assert os.path.isfile(os.path.join(DOCS_DIR, name)), \
            f"docs/{name} is missing"


def test_readme_links_into_docs():
    links = _links(os.path.join(REPO_ROOT, "README.md"))
    for name in REQUIRED_PAGES:
        assert any(link.rstrip("/").endswith(f"docs/{name}")
                   for link in links), \
            f"README.md does not link to docs/{name}"


@pytest.mark.parametrize("doc", _doc_files(),
                         ids=lambda path: os.path.relpath(path, REPO_ROOT))
def test_relative_links_resolve(doc):
    """Every relative link target (file and, if present, anchor) exists."""
    base = os.path.dirname(doc)
    for link in _links(doc):
        if re.match(r"^[a-z][a-z0-9+.-]*:", link):  # http:, mailto:, ...
            continue
        target, _, anchor = link.partition("#")
        if target:
            target_path = os.path.normpath(os.path.join(base, target))
            assert os.path.exists(target_path), \
                f"{os.path.relpath(doc, REPO_ROOT)}: broken link {link!r}"
        else:
            target_path = doc
        if anchor and target_path.endswith(".md"):
            assert anchor in _anchors(target_path), \
                (f"{os.path.relpath(doc, REPO_ROOT)}: dangling anchor "
                 f"{link!r} (known: {sorted(_anchors(target_path))})")


def test_docs_reference_only_existing_source_paths():
    """Backtick-free source references like tests/test_x.py must exist."""
    pattern = re.compile(
        r"(?:src/repro|tests|benchmarks|docs)/[\w\-/.]+\.(?:py|md)")
    for doc in _doc_files():
        with open(doc, encoding="utf-8") as handle:
            text = handle.read()
        for reference in set(pattern.findall(text)):
            assert os.path.exists(os.path.join(REPO_ROOT, reference)), \
                (f"{os.path.relpath(doc, REPO_ROOT)} references missing "
                 f"path {reference!r}")


# --------------------------------------------------------------------------- #
# CLI flag drift: docs/cli.md vs the live argparse parser
# --------------------------------------------------------------------------- #
def _cli_subcommand_flags():
    """``{subcommand: {--flag, ...}}`` from the live parser."""
    from repro.cli import build_parser

    parser = build_parser()
    subparsers_action = parser._subparsers._group_actions[0]
    flags_by_command = {}
    for name, subparser in subparsers_action.choices.items():
        flags = set()
        for action in subparser._actions:
            flags.update(option for option in action.option_strings
                         if option.startswith("--"))
        flags.discard("--help")
        flags_by_command[name] = flags
    return flags_by_command


_FLAG = re.compile(r"--[a-z][a-z0-9-]*")


def _cli_md_text():
    with open(os.path.join(DOCS_DIR, "cli.md"), encoding="utf-8") as handle:
        return handle.read()


def test_cli_md_documents_every_subcommand():
    text = _cli_md_text()
    for name in _cli_subcommand_flags():
        assert f"`{name}`" in text or f"autocheck {name}" in text, \
            f"docs/cli.md does not document the {name!r} subcommand"


def test_cli_md_documents_every_live_flag():
    """Every flag the parser accepts must appear in docs/cli.md — a new
    option cannot ship undocumented."""
    documented = set(_FLAG.findall(_cli_md_text()))
    for name, flags in _cli_subcommand_flags().items():
        missing = flags - documented
        assert not missing, \
            f"docs/cli.md is missing flags of {name!r}: {sorted(missing)}"


def test_cli_md_mentions_no_phantom_flags():
    """Every flag docs/cli.md mentions must exist on some subcommand — a
    removed or renamed option cannot linger in the docs."""
    live = set()
    for flags in _cli_subcommand_flags().values():
        live.update(flags)
    phantom = set(_FLAG.findall(_cli_md_text())) - live
    assert not phantom, \
        f"docs/cli.md mentions unknown flags: {sorted(phantom)}"
