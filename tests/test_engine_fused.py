"""The single-pass analysis engine: equivalence, temporal attribution, I/O.

Three properties pin the fused pipeline down:

1. **Full-report equivalence** — on every registered benchmark (plus the
   synthetic ``bigarray`` stress app), the fused engine produces the same
   MLI sets, classified variables, DDG (edges *and* node kinds) and R/W
   event sequences as the legacy multi-pass pipeline, in both materialized
   and streaming modes.
2. **Temporal attribution** — a loop-region access to an MLI array byte
   range that a later callee ``Alloca`` shadows attributes to the MLI
   variable.  The legacy post-hoc :func:`extract_rw_dependencies` resolves
   against the dependency analysis' end-of-region map and provably loses
   the event (the regression this file documents); the engine resolves at
   execution time and keeps it.
3. **Single streamed pass** — in streaming mode the fused pipeline streams
   the trace file's records exactly once end to end, while the multi-pass
   pipeline re-streams per stage (the counting-reader tests).
"""

from __future__ import annotations

import pytest
from conftest import make_alloca_record, make_operand, make_record as record

from repro.apps import all_apps, get_app
from repro.codegen.lowering import compile_source
from repro.core import AutoCheck, AutoCheckConfig, MainLoopSpec
from repro.core.dependency import DependencyAnalysis
from repro.core.engine import (
    KIND_BY_OPCODE,
    KIND_ARITHMETIC,
    KIND_FORWARDING,
    REGION_NAMES,
    AnalysisEngine,
    AnalysisPass,
)
from repro.core.errors import AnalysisError
from repro.core.preprocessing import identify_mli_variables, partition_trace
from repro.core.rwdeps import AccessKind, extract_rw_dependencies
from repro.ir.opcodes import (
    ARITHMETIC_OPCODES,
    ARITHMETIC_OPCODE_VALUES,
    FORWARDING_OPCODES,
    FORWARDING_OPCODE_VALUES,
    MEMORY_OPCODES,
    MEMORY_OPCODE_VALUES,
    Opcode,
)
from repro.trace.records import Trace, TraceOperand
from repro.tracer.driver import trace_to_file


def mem(index, name, address, bits=32, value=0):
    return make_operand(index, name, address=address, bits=bits, value=value)


def reg(index, name, bits=32, value=0, address=None):
    return make_operand(index, name, address=address, bits=bits, value=value,
                        is_register=True)


# --------------------------------------------------------------------------- #
# Engine unit behaviour
# --------------------------------------------------------------------------- #
class TestEngineBasics:
    def test_opcode_kind_table_matches_enum_sets(self):
        """The raw-value opcode sets (the hot-path micro-optimization) and
        the dispatch table must track the enum-typed sets exactly."""
        assert ARITHMETIC_OPCODE_VALUES == frozenset(
            int(op) for op in ARITHMETIC_OPCODES)
        assert FORWARDING_OPCODE_VALUES == frozenset(
            int(op) for op in FORWARDING_OPCODES)
        assert MEMORY_OPCODE_VALUES == frozenset(
            int(op) for op in MEMORY_OPCODES)
        for op in Opcode:
            kind = KIND_BY_OPCODE[int(op)]
            assert (kind == KIND_FORWARDING) == (op in FORWARDING_OPCODES)
            assert (kind == KIND_ARITHMETIC) == (op in ARITHMETIC_OPCODES)

    def test_region_tagging_matches_partition_trace(self, example_trace,
                                                    example_spec):
        engine = AnalysisEngine(example_spec, [])
        engine.add_globals(example_trace.globals)
        walk = engine.run(example_trace.records)
        reference = partition_trace(example_trace, example_spec)
        assert walk.before_count == len(reference.before)
        assert walk.inside_count == len(reference.inside)
        assert walk.after_count == len(reference.after)
        assert walk.first_loop_dyn_id == reference.first_loop_dyn_id
        assert walk.last_loop_dyn_id == reference.last_loop_dyn_id
        assert walk.record_count == len(example_trace.records)

    def test_no_loop_records_raises(self, example_trace):
        spec = MainLoopSpec(function="nonexistent", start_line=1, end_line=2)
        engine = AnalysisEngine(spec, [])
        with pytest.raises(AnalysisError, match="main computation loop"):
            engine.run(example_trace.records)

    def test_regions_dispatched_in_stream_order(self, example_trace,
                                                example_spec):
        seen = []
        transitions = []

        class Recorder(AnalysisPass):
            def on_load(self, rec, region):
                seen.append((rec.dyn_id, region))

            def on_store(self, rec, region):
                seen.append((rec.dyn_id, region))

            def on_region_change(self, region):
                transitions.append(REGION_NAMES[region])

        engine = AnalysisEngine(example_spec, [Recorder()])
        engine.add_globals(example_trace.globals)
        engine.run(example_trace.records)
        assert [dyn_id for dyn_id, _ in seen] == sorted(
            dyn_id for dyn_id, _ in seen)
        regions = [region for _, region in seen]
        # before -> inside -> after, each contiguous
        assert regions == sorted(regions)
        assert transitions == ["before", "inside", "after"]

    def test_unknown_opcode_fails_loudly(self, example_spec):
        """A corrupt trace (opcode outside the enum) must not be silently
        analysed — the old per-record Opcode(...) construction raised and
        the dispatch table keeps that contract."""
        bogus = record(1, Opcode.STORE, example_spec.function,
                       example_spec.start_line,
                       operands=[reg("1", "1"), mem("2", "x", 0x1000)])
        bogus.opcode = 999
        bogus.opcode_name = "Bogus"
        engine = AnalysisEngine(example_spec, [])
        with pytest.raises(AnalysisError, match="unknown opcode 999"):
            engine.run([bogus])


# --------------------------------------------------------------------------- #
# Full-report equivalence: fused vs. multi-pass, materialized and streaming
# --------------------------------------------------------------------------- #
def _ddg_shape(ddg):
    nodes = {node.key: node.kind for node in ddg.nodes()}
    return nodes, set(ddg.edges())


def _events(events):
    return [(e.dyn_id, e.variable, e.name, e.kind, e.line, e.function,
             e.element_offset) for e in events]


def _assert_reports_equal(got, reference):
    assert got.mli_variable_names == reference.mli_variable_names
    assert [(v.name, v.dependency) for v in got.critical_variables] == \
        [(v.name, v.dependency) for v in reference.critical_variables]
    assert got.dependency_string() == reference.dependency_string()
    assert got.induction_variable == reference.induction_variable
    assert _ddg_shape(got.complete_ddg) == _ddg_shape(reference.complete_ddg)
    assert _ddg_shape(got.contracted_ddg) == \
        _ddg_shape(reference.contracted_ddg)
    assert _events(got.rw_sequence.loop_events) == \
        _events(reference.rw_sequence.loop_events)
    assert _events(got.rw_sequence.post_loop_events) == \
        _events(reference.rw_sequence.post_loop_events)
    for attr in ("record_count", "before_count", "inside_count",
                 "after_count", "global_count"):
        assert getattr(got.trace_stats, attr) == \
            getattr(reference.trace_stats, attr)


def _equivalence_apps():
    return all_apps() + [get_app("bigarray")]


@pytest.mark.parametrize("app", _equivalence_apps(), ids=lambda app: app.name)
def test_fused_report_identical_on_all_apps(app, tmp_path):
    """Acceptance: the engine-fused report equals the legacy-shaped one —
    MLI sets, classified variables, DDG edges/kinds, R/W sequences — on
    every registered benchmark, in materialized *and* streaming mode."""
    source = app.source()
    module = compile_source(source, module_name=app.name)
    spec = app.main_loop(source)
    path = str(tmp_path / f"{app.name}.btrace")
    trace_to_file(module, path, fmt="binary")

    options = dict(app.autocheck_options)
    reference = AutoCheck(
        AutoCheckConfig(main_loop=spec, analysis_engine="multipass",
                        **options),
        trace_path=path).run()
    fused_materialized = AutoCheck(
        AutoCheckConfig(main_loop=spec, **options), trace_path=path).run()
    fused_streaming = AutoCheck(
        AutoCheckConfig(main_loop=spec, streaming_preprocessing=True,
                        **options),
        trace_path=path).run()

    _assert_reports_equal(fused_materialized, reference)
    _assert_reports_equal(fused_streaming, reference)


# --------------------------------------------------------------------------- #
# Temporal attribution regression
# --------------------------------------------------------------------------- #
SHADOW_SPEC = MainLoopSpec(function="main", start_line=5, end_line=7)
ARR = 0x1000     # main's i32 arr[4]: bytes [0x1000, 0x1010)
ARR_KEY = f"arr@{ARR:#x}"


@pytest.fixture()
def shadow_trace():
    """Inside the loop, main reads ``arr[2]``; *later* in the same loop a
    callee's Alloca shadows exactly that byte range and the callee never
    returns within the analysed extent (``longjmp``-style control flow, or
    a crash-truncated trace — the natural inputs of a checkpointing tool).
    The read must still attribute to ``arr``: post-hoc resolution against
    the end-of-region map cannot recover it, because the shadowing
    activation is still open when the region ends."""
    records = [
        make_alloca_record("arr", ARR, count=4, bits=32, function="main",
                           dyn_id=1, line=2),
        # before the loop: write arr[0] (makes arr an MLI candidate)
        record(2, Opcode.STORE, "main", 3,
               operands=[TraceOperand(index="1", bits=32, value=1,
                                      is_register=False, name=""),
                         mem("2", "arr", ARR)]),
        # loop: read arr[2] — at this moment arr owns 0x1008
        record(3, Opcode.LOAD, "main", 5,
               operands=[mem("1", "arr", ARR + 8)], result=reg("r", "1")),
        # loop: call g, whose tmp Alloca shadows arr's bytes [0x1008,0x100c);
        # g never returns (longjmp back into the loop)
        record(4, Opcode.CALL, "main", 6,
               operands=[mem("p1", "n", None)], callee="g"),
        make_alloca_record("tmp", ARR + 8, count=1, bits=32, function="g",
                           dyn_id=5, line=30),
        # loop: write arr[0] (closes the loop extent; tmp is still live)
        record(6, Opcode.STORE, "main", 7,
               operands=[reg("1", "1"), mem("2", "arr", ARR)]),
    ]
    return Trace(module_name="shadow", records=records)


class TestTemporalAttribution:
    def test_old_post_hoc_extraction_loses_the_event(self, shadow_trace):
        """The documented failure mode of the multi-pass design: resolving
        against the dependency analysis' *post-run* map — in which the
        never-closed activation's ``tmp`` still shadows ``arr[2]`` — the
        loop read of ``arr[2]`` vanishes from the R/W sequence."""
        preprocessing = identify_mli_variables(shadow_trace, SHADOW_SPEC)
        assert preprocessing.mli_keys() == [ARR_KEY]
        dependency = DependencyAnalysis(preprocessing).run()
        rw = extract_rw_dependencies(preprocessing,
                                     variable_map=dependency.variable_map)
        kinds = [event.kind for event in rw.events_for(ARR_KEY)]
        assert kinds == [AccessKind.WRITE]  # the READ is gone

    def test_engine_attributes_to_the_mli_variable(self, shadow_trace):
        report = AutoCheck(AutoCheckConfig(main_loop=SHADOW_SPEC),
                           trace=shadow_trace).run()
        events = report.rw_sequence.events_for(ARR_KEY)
        assert [(e.kind, e.element_offset) for e in events] == [
            (AccessKind.READ, 2), (AccessKind.WRITE, 0)]

    def test_classification_flips_from_missed_to_war(self, shadow_trace):
        """End to end: the lost read hides the read-before-overwrite
        pattern from the multi-pass pipeline; the engine sees it and
        classifies ``arr`` as WAR (it must be checkpointed)."""
        multipass = AutoCheck(
            AutoCheckConfig(main_loop=SHADOW_SPEC,
                            analysis_engine="multipass"),
            trace=shadow_trace).run()
        fused = AutoCheck(AutoCheckConfig(main_loop=SHADOW_SPEC),
                          trace=shadow_trace).run()
        assert "arr" not in multipass.names()
        assert fused.find("arr") is not None
        assert fused.find("arr").dependency.value == "WAR"

    def test_access_after_retired_shadow_resolves_again(self):
        """When the shadowing callee *does* return, retiring its Alloca
        restores the shadowed byte range to the still-live MLI array, so a
        later loop read of ``arr[2]`` attributes correctly too (regression:
        ``VariableMap.retire`` used to leave a permanent hole)."""
        records = [
            make_alloca_record("arr", ARR, count=4, bits=32, function="main",
                               dyn_id=1, line=2),
            record(2, Opcode.STORE, "main", 3,
                   operands=[TraceOperand(index="1", bits=32, value=1,
                                          is_register=False, name=""),
                             mem("2", "arr", ARR)]),
            record(3, Opcode.LOAD, "main", 5,
                   operands=[mem("1", "arr", ARR + 8)], result=reg("r", "1")),
            record(4, Opcode.CALL, "main", 6,
                   operands=[mem("p1", "n", None)], callee="g"),
            make_alloca_record("tmp", ARR + 8, count=1, bits=32,
                               function="g", dyn_id=5, line=30),
            record(6, Opcode.RET, "g", 31),
            # back in the loop after g returned: arr[2] must resolve again
            record(7, Opcode.LOAD, "main", 6,
                   operands=[mem("1", "arr", ARR + 8)], result=reg("r", "2")),
            record(8, Opcode.STORE, "main", 7,
                   operands=[reg("1", "1"), mem("2", "arr", ARR)]),
        ]
        trace = Trace(module_name="shadow-ret", records=records)
        report = AutoCheck(AutoCheckConfig(main_loop=SHADOW_SPEC),
                           trace=trace).run()
        events = report.rw_sequence.events_for(ARR_KEY)
        assert [(e.dyn_id, e.kind, e.element_offset) for e in events] == [
            (3, AccessKind.READ, 2), (7, AccessKind.READ, 2),
            (8, AccessKind.WRITE, 0)]


class TestNestedLoopFunction:
    """The main loop living in a *called* function: accesses to a live
    ancestor frame's locals resolve in the engine's shared map but must be
    rejected for MLI identification, exactly as the legacy restricted map
    (globals + loop-function allocations only) leaves them unresolved."""

    SPEC = MainLoopSpec(function="compute", start_line=20, end_line=25)
    BUF = 0x2000   # main's buffer, passed to compute by pointer
    ACC = 0x3000   # compute's own accumulator

    def _trace(self):
        records = [
            make_alloca_record("buf", self.BUF, count=4, bits=32,
                               function="main", dyn_id=1, line=2),
            record(2, Opcode.CALL, "main", 3,
                   operands=[mem("p1", "p", None)], callee="compute"),
            make_alloca_record("acc", self.ACC, function="compute",
                               dyn_id=3, line=17),
            # compute, before its loop: touch both its own acc and main's buf
            record(4, Opcode.STORE, "compute", 18,
                   operands=[reg("1", "1"), mem("2", "acc", self.ACC)]),
            record(5, Opcode.STORE, "compute", 19,
                   operands=[reg("1", "1"), mem("2", "p", self.BUF)]),
            # the loop: read acc then buf, write acc
            record(6, Opcode.LOAD, "compute", 21,
                   operands=[mem("1", "acc", self.ACC)], result=reg("r", "2")),
            record(7, Opcode.LOAD, "compute", 22,
                   operands=[mem("1", "p", self.BUF)], result=reg("r", "3")),
            record(8, Opcode.STORE, "compute", 24,
                   operands=[reg("1", "2"), mem("2", "acc", self.ACC)]),
        ]
        return Trace(module_name="nested", records=records)

    def test_mli_and_critical_sets_match_multipass(self):
        trace = self._trace()
        fused = AutoCheck(AutoCheckConfig(main_loop=self.SPEC),
                          trace=trace).run()
        multipass = AutoCheck(
            AutoCheckConfig(main_loop=self.SPEC,
                            analysis_engine="multipass"),
            trace=trace).run()
        assert fused.mli_variable_names == multipass.mli_variable_names
        assert fused.dependency_string() == multipass.dependency_string()
        assert "buf" not in fused.mli_variable_names
        assert "acc" in fused.mli_variable_names
        assert _events(fused.rw_sequence.loop_events) == \
            _events(multipass.rw_sequence.loop_events)


# --------------------------------------------------------------------------- #
# Counting reader: the streaming fused path streams the file exactly once
# --------------------------------------------------------------------------- #
@pytest.fixture(params=["text", "binary"])
def example_trace_file(request, example_trace, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("engine") / f"ex.{request.param}")
    if request.param == "binary":
        from repro.trace import write_trace_file_binary

        write_trace_file_binary(example_trace, path)
    else:
        from repro.trace import write_trace_file

        write_trace_file(example_trace, path)
    return path


@pytest.fixture()
def stream_counter(monkeypatch):
    """Count every record-stream opened on a trace file, wherever it is
    requested from (the pipeline's front door, the streaming pre-processing
    pass, or a re-iterable region view)."""
    counts = {"streams": 0}

    import repro.trace.binio as binio_module
    import repro.trace.columnar as columnar_module
    import repro.trace.textio as textio_module

    # Patch the low-level streams every reading path funnels through (the
    # sniffing front door and the region views both end up in one of the
    # record iterators; the columnar walk opens one block stream), so one
    # logical stream counts exactly once.
    real_text_iter = textio_module.iter_trace_file_text
    real_reader_iter = binio_module.TraceBinaryReader.iter_records
    real_iter_blocks = columnar_module.TraceColumnarReader.iter_blocks

    def counting_text_iter(path, start_record=0):
        counts["streams"] += 1
        return real_text_iter(path, start_record=start_record)

    def counting_reader_iter(self, start_record=0, **kwargs):
        counts["streams"] += 1
        return real_reader_iter(self, start_record=start_record, **kwargs)

    def counting_iter_blocks(self, *args, **kwargs):
        counts["streams"] += 1
        return real_iter_blocks(self, *args, **kwargs)

    monkeypatch.setattr(textio_module, "iter_trace_file_text",
                        counting_text_iter)
    monkeypatch.setattr(binio_module.TraceBinaryReader, "iter_records",
                        counting_reader_iter)
    monkeypatch.setattr(columnar_module.TraceColumnarReader, "iter_blocks",
                        counting_iter_blocks)
    return counts


class TestSingleStreamedPass:
    def test_fused_streaming_streams_exactly_once(self, example_trace_file,
                                                  example_spec,
                                                  stream_counter):
        report = AutoCheck(
            AutoCheckConfig(main_loop=example_spec,
                            streaming_preprocessing=True),
            trace_path=example_trace_file).run()
        assert report.critical_variables
        assert stream_counter["streams"] == 1

    def test_multipass_streaming_restreams_per_stage(self, example_trace_file,
                                                     example_spec,
                                                     stream_counter):
        """The baseline the engine replaces: every stage re-streams (and
        for text traces re-parses) the file."""
        AutoCheck(
            AutoCheckConfig(main_loop=example_spec,
                            streaming_preprocessing=True,
                            analysis_engine="multipass"),
            trace_path=example_trace_file).run()
        assert stream_counter["streams"] >= 4
