"""The parallel fused engine: equivalence, boundary seeding, transport.

Four properties pin the sharded walk down:

1. **Full-report equivalence** — on every registered benchmark (plus the
   synthetic ``bigarray`` stress app), ``analysis_engine="parallel"``
   produces the same MLI sets, classified variables, DDG (edges *and* node
   kinds), R/W event sequences and trace stats as the serial fused engine,
   at 1, 2 and 4 workers.
2. **Boundary independence** — on adversarial synthetic traces, *every*
   possible partition boundary position yields the identical report,
   including boundaries that fall mid-scope (inside a callee activation,
   even one opened by a pending ``Call`` straddling the cut) and
   mid-loop-iteration.
3. **Snapshot transport** — :class:`~repro.core.varmap.VariableMap` clones
   are independent and survive pickling with shadowing, scoping and
   shadow-undo state intact (the identity-keyed internals are re-keyed).
4. **Input contract** — text traces and in-memory traces are rejected with
   a clear error instead of a wrong answer.
"""

from __future__ import annotations

import pickle

import pytest
from conftest import make_alloca_record, make_record
from test_engine_fused import SHADOW_SPEC, _assert_reports_equal, mem, reg
from test_engine_fused import shadow_trace  # noqa: F401 (re-exported fixture)

from repro.apps import all_apps, get_app
from repro.codegen.lowering import compile_source
from repro.core import AutoCheck, AutoCheckConfig, MainLoopSpec
from repro.core.errors import AnalysisError
from repro.core.parallel import run_parallel_fused
from repro.core.varmap import VariableMap
from repro.ir.opcodes import Opcode
from repro.trace import write_trace_file, write_trace_file_binary
from repro.trace.binio import read_layout, scan_record_headers
from repro.trace.records import Trace
from repro.tracer.driver import trace_to_file
from repro.util.timing import TimingBreakdown

record = make_record


def _equivalence_apps():
    return all_apps() + [get_app("bigarray")]


@pytest.fixture(scope="module", params=_equivalence_apps(),
                ids=lambda app: app.name)
def app_setup(request, tmp_path_factory):
    """Binary trace + serial fused reference report, once per app."""
    app = request.param
    source = app.source()
    module = compile_source(source, module_name=app.name)
    spec = app.main_loop(source)
    path = str(tmp_path_factory.mktemp("par") / f"{app.name}.btrace")
    trace_to_file(module, path, fmt="binary")
    options = dict(app.autocheck_options)
    reference = AutoCheck(AutoCheckConfig(main_loop=spec, **options),
                          trace_path=path).run()
    return spec, path, options, reference


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_report_identical_on_all_apps(app_setup, workers):
    """Acceptance: the sharded walk's report equals the serial fused one —
    MLI sets, classified variables, DDG edges/kinds, R/W sequences, stats —
    on every registered benchmark, at 1/2/4 workers."""
    spec, path, options, reference = app_setup
    report = AutoCheck(
        AutoCheckConfig(main_loop=spec, analysis_engine="parallel",
                        workers=workers, **options),
        trace_path=path).run()
    _assert_reports_equal(report, reference)


# --------------------------------------------------------------------------- #
# Adversarial boundaries on synthetic traces
# --------------------------------------------------------------------------- #
def _parallel_report(path, spec, boundaries, workers=1):
    """Drive the coordinator with explicit cut points, then assemble the
    report through the pipeline's shared identify stage."""
    autocheck = AutoCheck(
        AutoCheckConfig(main_loop=spec, analysis_engine="parallel",
                        workers=workers),
        trace_path=path)
    result = run_parallel_fused(path, spec, workers=workers,
                                need_probe=True, boundaries=boundaries)
    return autocheck._assemble_fused_report(
        TimingBreakdown(), spec, result.varmap, result.walk,
        result.global_count, result.mli, result.dep, result.rw,
        result.probe, None)


class TestAdversarialBoundaries:
    """Every cut position must reproduce the serial report exactly."""

    @pytest.fixture()
    def shadow_file(self, shadow_trace, tmp_path):
        path = str(tmp_path / "shadow.btrace")
        write_trace_file_binary(shadow_trace, path)
        return path

    def test_every_single_cut_matches_fused(self, shadow_trace, shadow_file):
        """The shadow trace packs a loop access, a pending-activation
        ``Call``, a mid-activation ``Alloca`` that shadows an MLI byte
        range, and a never-returning callee into 6 records — cutting at
        every position crosses each of those states in turn (cut 4 starts a
        partition on the callee's first record, so the pending activation
        itself straddles the boundary; cut 3/5 split mid-loop-iteration)."""
        reference = AutoCheck(AutoCheckConfig(main_loop=SHADOW_SPEC),
                              trace=shadow_trace).run()
        for cut in range(1, len(shadow_trace.records)):
            report = _parallel_report(shadow_file, SHADOW_SPEC, [cut])
            _assert_reports_equal(report, reference)

    def test_cut_pairs_matches_fused(self, shadow_trace, shadow_file):
        reference = AutoCheck(AutoCheckConfig(main_loop=SHADOW_SPEC),
                              trace=shadow_trace).run()
        count = len(shadow_trace.records)
        for first in range(1, count):
            for second in range(first + 1, count):
                report = _parallel_report(shadow_file, SHADOW_SPEC,
                                          [first, second])
                _assert_reports_equal(report, reference)

    def test_mid_activation_cut_through_worker_processes(self, shadow_trace,
                                                         shadow_file):
        """The same mid-scope boundary, but exercising the real process
        fan-out (snapshot pickling included)."""
        reference = AutoCheck(AutoCheckConfig(main_loop=SHADOW_SPEC),
                              trace=shadow_trace).run()
        report = _parallel_report(shadow_file, SHADOW_SPEC, [4], workers=2)
        _assert_reports_equal(report, reference)


class TestNestedCalleeBoundaries:
    """The main loop living in a *called* function, partitioned at every
    position — parameter-binding frames and ancestor-frame rejection must
    stitch across the cut."""

    SPEC = MainLoopSpec(function="compute", start_line=20, end_line=25)
    BUF = 0x2000
    ACC = 0x3000

    def _trace(self):
        records = [
            make_alloca_record("buf", self.BUF, count=4, bits=32,
                               function="main", dyn_id=1, line=2),
            record(2, Opcode.CALL, "main", 3,
                   operands=[mem("p1", "p", None)], callee="compute"),
            make_alloca_record("acc", self.ACC, function="compute",
                               dyn_id=3, line=17),
            record(4, Opcode.STORE, "compute", 18,
                   operands=[reg("1", "1"), mem("2", "acc", self.ACC)]),
            record(5, Opcode.STORE, "compute", 19,
                   operands=[reg("1", "1"), mem("2", "p", self.BUF)]),
            record(6, Opcode.LOAD, "compute", 21,
                   operands=[mem("1", "acc", self.ACC)], result=reg("r", "2")),
            record(7, Opcode.LOAD, "compute", 22,
                   operands=[mem("1", "p", self.BUF)], result=reg("r", "3")),
            record(8, Opcode.STORE, "compute", 24,
                   operands=[reg("1", "2"), mem("2", "acc", self.ACC)]),
        ]
        return Trace(module_name="nested", records=records)

    def test_every_cut_matches_fused(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "nested.btrace")
        write_trace_file_binary(trace, path)
        reference = AutoCheck(AutoCheckConfig(main_loop=self.SPEC),
                              trace=trace).run()
        assert "acc" in reference.mli_variable_names
        for cut in range(1, len(trace.records)):
            report = _parallel_report(path, self.SPEC, [cut])
            _assert_reports_equal(report, reference)

    def test_more_workers_than_records(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "nested16.btrace")
        write_trace_file_binary(trace, path)
        reference = AutoCheck(AutoCheckConfig(main_loop=self.SPEC),
                              trace=trace).run()
        report = AutoCheck(
            AutoCheckConfig(main_loop=self.SPEC, analysis_engine="parallel",
                            workers=16),
            trace_path=path).run()
        _assert_reports_equal(report, reference)


# --------------------------------------------------------------------------- #
# Snapshot transport: VariableMap clone + pickle
# --------------------------------------------------------------------------- #
class TestVariableMapTransport:
    ARR = 0x1000

    def _shadowed_map(self):
        """arr[4] with a callee's tmp shadowing arr[2], scope still open."""
        varmap = VariableMap()
        arr = make_alloca_record("arr", self.ARR, count=4, bits=32,
                                 function="main", dyn_id=1)
        varmap.add_alloca_record(arr)
        varmap.enter_scope("g")
        tmp = make_alloca_record("tmp", self.ARR + 8, count=1, bits=32,
                                 function="g", dyn_id=2)
        varmap.add_alloca_record(tmp)
        return varmap

    def test_clone_is_independent(self):
        varmap = self._shadowed_map()
        clone = varmap.clone()
        # New registration on the clone must not leak into the original.
        clone.add_alloca_record(make_alloca_record(
            "other", self.ARR, count=4, bits=32, function="main", dyn_id=3))
        assert varmap.resolve(self.ARR).name == "arr"
        assert clone.resolve(self.ARR).name == "other"
        # Scope state is copied too: exiting on the clone restores arr[2]
        # there and only there.
        clone2 = varmap.clone()
        clone2.exit_scope("g")
        assert clone2.resolve(self.ARR + 8).name == "arr"
        assert varmap.resolve(self.ARR + 8).name == "tmp"

    def test_pickle_roundtrip_preserves_resolution_and_scopes(self):
        varmap = self._shadowed_map()
        restored = pickle.loads(pickle.dumps(varmap))
        assert restored.resolve(self.ARR).name == "arr"
        assert restored.resolve(self.ARR + 8).name == "tmp"
        assert restored.open_scope_count == 1
        assert len(restored) == len(varmap)
        # The shadow-undo journal must survive the identity re-keying:
        # retiring the shadower hands arr[2] back.
        restored.exit_scope("g")
        assert restored.resolve(self.ARR + 8).name == "arr"
        assert restored.open_scope_count == 0

    def test_pickle_roundtrip_preserves_retired_owners(self):
        varmap = self._shadowed_map()
        # Retire arr itself first; tmp's undo journal must then NOT restore
        # the range to the retired arr after a roundtrip.
        arr_info = varmap.by_name("arr")[0]
        restored = pickle.loads(pickle.dumps(varmap))
        varmap.retire(arr_info)
        restored.retire(restored.by_name("arr")[0])
        for current in (varmap, restored):
            current.exit_scope("g")
            assert current.resolve(self.ARR + 8) is None


# --------------------------------------------------------------------------- #
# Header-only scanning
# --------------------------------------------------------------------------- #
class TestScanRecordHeaders:
    def test_headers_match_full_decode(self, example_trace, tmp_path):
        path = str(tmp_path / "scan.btrace")
        write_trace_file_binary(example_trace, path)
        layout = read_layout(path)
        alloca = int(Opcode.ALLOCA)
        entries = list(scan_record_headers(path, layout,
                                           full_opcodes=frozenset({alloca})))
        assert len(entries) == len(example_trace.records)
        for entry, expected in zip(entries, example_trace.records):
            dyn_id, opcode, line, function_id, callee_id, full = entry
            assert dyn_id == expected.dyn_id
            assert opcode == expected.opcode
            assert line == expected.line
            assert layout.strings[function_id] == expected.function
            assert layout.strings[callee_id] == expected.callee
            if expected.opcode == alloca:
                assert full == expected
            else:
                assert full is None

    def test_small_chunk_size_refill_path(self, example_trace, tmp_path):
        path = str(tmp_path / "scan-small.btrace")
        write_trace_file_binary(example_trace, path)
        entries = list(scan_record_headers(path, chunk_bytes=64))
        assert len(entries) == len(example_trace.records)
        assert [e[0] for e in entries] == \
            [r.dyn_id for r in example_trace.records]


# --------------------------------------------------------------------------- #
# Input contract
# --------------------------------------------------------------------------- #
class TestParallelInputContract:
    def test_text_trace_is_rejected(self, example_trace, example_spec,
                                    tmp_path):
        path = str(tmp_path / "text.trace")
        write_trace_file(example_trace, path)
        with pytest.raises(AnalysisError, match="binary trace"):
            AutoCheck(
                AutoCheckConfig(main_loop=example_spec,
                                analysis_engine="parallel"),
                trace_path=path).run()

    def test_in_memory_trace_is_rejected(self, example_trace, example_spec):
        with pytest.raises(AnalysisError, match="trace file path"):
            AutoCheck(
                AutoCheckConfig(main_loop=example_spec,
                                analysis_engine="parallel"),
                trace=example_trace).run()

    def test_no_loop_records_raises(self, example_trace, tmp_path):
        path = str(tmp_path / "noloop.btrace")
        write_trace_file_binary(example_trace, path)
        spec = MainLoopSpec(function="nonexistent", start_line=1, end_line=2)
        with pytest.raises(AnalysisError, match="main computation loop"):
            AutoCheck(
                AutoCheckConfig(main_loop=spec, analysis_engine="parallel"),
                trace_path=path).run()

    def test_workers_validation(self, example_spec):
        with pytest.raises(ValueError, match="workers"):
            AutoCheckConfig(main_loop=example_spec,
                            analysis_engine="parallel", workers=0)
        # Only read by the parallel engine — other engines keep the old
        # tolerance for any --workers value.
        assert AutoCheckConfig(main_loop=example_spec, workers=0)
