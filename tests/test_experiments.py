"""Tests for the experiment harnesses (Tables II/III/IV, validation, Fig. 5)."""

import pytest

from repro.experiments import (
    format_table2,
    format_table3,
    format_table4,
    format_validation,
    run_figure5,
    run_table2,
    run_table3,
    run_table4,
    run_validation,
)
from repro.experiments.common import analyze_app, variable_sizes, run_untraced
from repro.apps import get_app

#: Small subset so the experiment harness tests stay quick.
SUBSET = ["himeno", "mg"]


@pytest.fixture(scope="module")
def table2_rows(tmp_path_factory):
    trace_dir = str(tmp_path_factory.mktemp("table2"))
    return run_table2(apps=SUBSET, trace_dir=trace_dir)


class TestTable2:
    def test_row_per_app(self, table2_rows):
        assert [row.name for row in table2_rows] == ["Himeno", "MG (NPB)"]

    def test_rows_match_paper(self, table2_rows):
        assert all(row.matches_paper for row in table2_rows)

    def test_trace_files_measured(self, table2_rows):
        for row in table2_rows:
            assert row.trace_bytes > 1000
            assert row.trace_generation_seconds > 0
            assert row.loc > 10

    def test_mclr_format(self, table2_rows):
        for row in table2_rows:
            start, end = row.mclr.split("-")
            assert int(start) < int(end)

    def test_formatting_contains_critical_variables(self, table2_rows):
        text = format_table2(table2_rows)
        assert "p (WAR)" in text
        assert "u (WAR)" in text
        assert "Matches paper" in text


class TestTable3:
    def test_breakdown_columns_positive(self):
        rows = run_table3(apps=["himeno"])
        row = rows[0]
        assert row.preprocessing_serial > 0
        assert row.preprocessing_parallel > 0
        assert row.dependency_analysis > 0
        assert row.identify_variables >= 0
        assert row.total_serial >= row.dependency_analysis
        assert row.preprocessing_speedup > 0
        assert row.fused_total > 0
        assert row.record_count > 0
        assert row.fused_records_per_second > 0
        assert row.fused_speedup > 0
        text = format_table3(rows)
        assert "Pre-processing" in text
        assert "krec/s" in text


class TestTable4:
    def test_blcr_dominates_autocheck(self):
        rows = run_table4(apps=SUBSET, use_large_inputs=False)
        for row in rows:
            assert row.blcr_bytes > row.autocheck_bytes
            assert row.ratio > 10
            assert row.critical_variables
        text = format_table4(rows)
        assert "BLCR" in text and "AutoCheck" in text

    def test_large_inputs_grow_autocheck_checkpoint(self):
        small = run_table4(apps=["mg"], use_large_inputs=False)[0]
        large = run_table4(apps=["mg"], use_large_inputs=True)[0]
        assert large.autocheck_bytes > small.autocheck_bytes


class TestValidationHarness:
    def test_validation_rows(self):
        rows = run_validation(apps=["mg"], fail_at_iteration=3)
        row = rows[0]
        assert row.restart_successful
        assert not row.false_positives
        text = format_validation(rows)
        assert "success" in text


class TestFigure5:
    def test_figure5_artifacts(self):
        result = run_figure5()
        assert set(result.mli_variables) == {"a", "b", "sum", "s", "r"}
        assert result.critical_variables == {
            "r": "WAR", "a": "RAPO", "sum": "Outcome", "it": "Index"}
        assert ("a", "sum") in result.contracted_edges
        assert result.complete_nodes > len(result.contracted_nodes)
        assert "s-Write" in result.rw_sequence
        summary = result.summary()
        assert "Critical variables" in summary


class TestCommonHelpers:
    def test_variable_sizes_lookup(self):
        app = get_app("himeno")
        analysis = analyze_app(app)
        execution = run_untraced(app)
        sizes = variable_sizes(analysis.module, execution,
                               ["p", "n", "nonexistent"])
        assert sizes["p"] == 8 * 8 * 8   # 8x8 doubles
        assert sizes["n"] in (4, 8)      # scalar int (stack slots are 8-aligned)
        assert sizes["nonexistent"] == 0

    def test_mismatch_description_exact_match(self):
        analysis = analyze_app(get_app("himeno"))
        assert analysis.matches_expected
        assert analysis.mismatch_description() == "exact match"
