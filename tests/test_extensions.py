"""Tests for the extension modules: checkpoint-interval models and trace
characterization statistics."""

import math

import pytest

from repro.checkpoint.interval import (
    checkpoint_cost_seconds,
    daly_interval,
    expected_waste_fraction,
    recommend_interval,
    young_interval,
)
from repro.trace.stats import compute_trace_statistics


class TestCheckpointCost:
    def test_cost_scales_with_size(self):
        assert checkpoint_cost_seconds(10**9, 1e9) == pytest.approx(1.0)
        assert checkpoint_cost_seconds(10**6, 1e9) == pytest.approx(1e-3)

    def test_latency_added(self):
        assert checkpoint_cost_seconds(0, 1e9, latency_seconds=0.5) == 0.5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            checkpoint_cost_seconds(100, 0)
        with pytest.raises(ValueError):
            checkpoint_cost_seconds(-1, 1e9)


class TestIntervalModels:
    def test_young_formula(self):
        assert young_interval(10.0, 7200.0) == pytest.approx(
            math.sqrt(2 * 10.0 * 7200.0))

    def test_daly_close_to_young_for_small_cost(self):
        cost, mtbf = 1.0, 24 * 3600.0
        assert daly_interval(cost, mtbf) == pytest.approx(
            young_interval(cost, mtbf), rel=0.05)

    def test_daly_caps_at_mtbf_for_huge_cost(self):
        assert daly_interval(10_000.0, 100.0) == 100.0

    def test_smaller_checkpoints_mean_shorter_intervals_and_less_waste(self):
        mtbf = 6 * 3600.0
        small = daly_interval(0.5, mtbf)
        large = daly_interval(300.0, mtbf)
        assert small < large
        assert expected_waste_fraction(small, 0.5, mtbf) < \
            expected_waste_fraction(large, 300.0, mtbf)

    def test_waste_fraction_validation(self):
        with pytest.raises(ValueError):
            expected_waste_fraction(0.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            young_interval(1.0, 0.0)

    def test_recommendation_from_autocheck_checkpoint(self, mg_analysis):
        checkpoint_bytes = mg_analysis.report.checkpoint_bytes()
        recommendation = recommend_interval("mg", checkpoint_bytes,
                                            mtbf_seconds=4 * 3600.0)
        assert recommendation.daly_seconds > 0
        assert recommendation.young_seconds > 0
        assert 0 < recommendation.waste_fraction < 1
        assert "mg" in recommendation.summary()

    def test_autocheck_beats_blcr_checkpoint_waste(self, mg_analysis):
        """The Table IV storage gap translates into lower expected waste."""
        from repro.checkpoint import BLCRModel

        mtbf = 2 * 3600.0
        bandwidth = 2e8  # 200 MB/s local SSD
        autocheck_bytes = mg_analysis.report.checkpoint_bytes()
        blcr_bytes = BLCRModel().checkpoint_bytes_from_result(mg_analysis.execution)
        auto = recommend_interval("mg", autocheck_bytes, mtbf,
                                  bandwidth_bytes_per_second=bandwidth)
        blcr = recommend_interval("mg-blcr", blcr_bytes, mtbf,
                                  bandwidth_bytes_per_second=bandwidth)
        assert auto.checkpoint_cost_seconds < blcr.checkpoint_cost_seconds
        assert auto.waste_fraction <= blcr.waste_fraction


class TestTraceStatistics:
    def test_counts_cover_whole_trace(self, example_trace):
        stats = compute_trace_statistics(example_trace)
        assert stats.record_count == len(example_trace.records)
        assert sum(stats.opcode_histogram.values()) == stats.record_count
        assert sum(stats.function_histogram.values()) == stats.record_count

    def test_opcode_histogram_contains_expected_kinds(self, example_trace):
        stats = compute_trace_statistics(example_trace)
        for name in ("Load", "Store", "Mul", "Br", "Call", "Alloca"):
            assert stats.opcode_histogram.get(name, 0) > 0, name

    def test_main_loop_fraction(self, example_trace, example_spec):
        stats = compute_trace_statistics(example_trace, main_loop=example_spec)
        assert stats.before_count + stats.inside_count + stats.after_count == \
            stats.record_count
        assert 0.5 < stats.main_loop_fraction < 1.0

    def test_memory_and_arithmetic_counts(self, example_trace):
        stats = compute_trace_statistics(example_trace)
        assert stats.memory_access_count > stats.call_count
        assert stats.arithmetic_count > 0

    def test_summary_and_top_opcodes(self, example_trace, example_spec):
        stats = compute_trace_statistics(example_trace, main_loop=example_spec)
        top = stats.top_opcodes(limit=3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]
        text = stats.summary()
        assert "records:" in text and "inside" in text
