"""Property-based tests for the Young/Daly interval models.

Hypothesis sweeps the (checkpoint cost, MTBF) space the campaign runner
feeds these models from, pinning the structural guarantees the checkpoint
scheduling relies on: monotonicity in MTBF, the recommended interval
(approximately) minimizing the expected waste, waste staying a proper
fraction in the regime the models are valid for, and loud rejection of
non-positive inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.interval import (
    checkpoint_cost_seconds,
    daly_interval,
    expected_waste_fraction,
    interval_in_iterations,
    young_interval,
)

# Costs and MTBFs the models are meaningful for: C strictly positive and
# small relative to the MTBF (Daly's own validity regime).  The ratio cap
# keeps waste a proper fraction and the optimum interior.
costs = st.floats(min_value=1e-3, max_value=100.0,
                  allow_nan=False, allow_infinity=False)
mtbfs = st.floats(min_value=1.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False)


def _in_regime(cost, mtbf):
    return cost <= mtbf / 8.0


@settings(max_examples=200, deadline=None)
@given(cost=costs, mtbf=mtbfs, factor=st.floats(min_value=1.1, max_value=10.0))
def test_intervals_monotone_in_mtbf(cost, mtbf, factor):
    if not _in_regime(cost, mtbf * 1.0):
        return
    longer = mtbf * factor
    assert young_interval(cost, longer) >= young_interval(cost, mtbf)
    assert daly_interval(cost, longer) >= daly_interval(cost, mtbf)


@settings(max_examples=200, deadline=None)
@given(cost=costs, mtbf=mtbfs)
def test_intervals_positive_and_ordered(cost, mtbf):
    if not _in_regime(cost, mtbf):
        return
    young = young_interval(cost, mtbf)
    daly = daly_interval(cost, mtbf)
    assert young > 0 and daly > 0
    # In the small-cost regime Daly's correction shifts the optimum by less
    # than the checkpoint cost itself.
    assert abs(daly - young) <= max(cost, 0.25 * young)


@settings(max_examples=200, deadline=None)
@given(cost=costs, mtbf=mtbfs)
def test_waste_fraction_in_unit_interval_at_recommendation(cost, mtbf):
    if not _in_regime(cost, mtbf):
        return
    for interval in (young_interval(cost, mtbf), daly_interval(cost, mtbf)):
        waste = expected_waste_fraction(interval, cost, mtbf)
        assert 0.0 < waste <= 1.0


@settings(max_examples=200, deadline=None)
@given(cost=costs, mtbf=mtbfs)
def test_recommended_interval_minimizes_waste(cost, mtbf):
    if not _in_regime(cost, mtbf):
        return
    recommended = young_interval(cost, mtbf)
    at_rec = expected_waste_fraction(recommended, cost, mtbf)
    # Young's interval is the exact minimizer of the first-order waste model
    # C/T + T/(2*MTBF): moving away in either direction cannot help.
    assert at_rec <= expected_waste_fraction(recommended * 0.5, cost, mtbf) + 1e-12
    assert at_rec <= expected_waste_fraction(recommended * 2.0, cost, mtbf) + 1e-12
    assert at_rec <= expected_waste_fraction(recommended * 0.9, cost, mtbf) + 1e-12
    assert at_rec <= expected_waste_fraction(recommended * 1.1, cost, mtbf) + 1e-12


@settings(max_examples=100, deadline=None)
@given(cost=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
       mtbf=st.floats(min_value=0.01, max_value=10.0, allow_nan=False))
def test_daly_saturates_at_mtbf_when_cost_dominates(cost, mtbf):
    if cost < 2.0 * mtbf:
        return
    assert daly_interval(cost, mtbf) == mtbf


@settings(max_examples=100, deadline=None)
@given(seconds=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
       per_iteration=st.floats(min_value=1e-3, max_value=1e3,
                               allow_nan=False))
def test_interval_quantization_bounds(seconds, per_iteration):
    iterations = interval_in_iterations(seconds, per_iteration)
    assert iterations >= 1
    assert isinstance(iterations, int)
    # Never off by more than one iteration from the real-valued optimum
    # (and never below one).
    assert abs(iterations - seconds / per_iteration) <= max(
        1.0, seconds / per_iteration)


class TestValidationErrors:
    """``_validate`` (via the public entry points) names the bad value."""

    @pytest.mark.parametrize("bad_cost", [0.0, -1.0, -1e-9])
    def test_non_positive_cost_named(self, bad_cost):
        with pytest.raises(ValueError, match="checkpoint_cost"):
            young_interval(bad_cost, 100.0)
        with pytest.raises(ValueError, match="checkpoint_cost"):
            daly_interval(bad_cost, 100.0)
        with pytest.raises(ValueError, match="checkpoint_cost"):
            expected_waste_fraction(10.0, bad_cost, 100.0)

    @pytest.mark.parametrize("bad_mtbf", [0.0, -5.0])
    def test_non_positive_mtbf_named(self, bad_mtbf):
        with pytest.raises(ValueError, match="mtbf_seconds"):
            young_interval(1.0, bad_mtbf)
        with pytest.raises(ValueError, match="mtbf_seconds"):
            daly_interval(1.0, bad_mtbf)
        with pytest.raises(ValueError, match="mtbf_seconds"):
            expected_waste_fraction(10.0, 1.0, bad_mtbf)

    def test_error_message_carries_the_value(self):
        with pytest.raises(ValueError, match="-3.0"):
            young_interval(-3.0, 100.0)
        with pytest.raises(ValueError, match="-7.0"):
            young_interval(1.0, -7.0)

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            expected_waste_fraction(0.0, 1.0, 100.0)
        with pytest.raises(ValueError, match="interval_seconds"):
            interval_in_iterations(0.0, 1.0)
        with pytest.raises(ValueError, match="seconds_per_iteration"):
            interval_in_iterations(1.0, 0.0)

    def test_cost_function_still_accepts_zero_bytes(self):
        # Latency alone is a valid (positive) cost for an empty checkpoint.
        assert checkpoint_cost_seconds(0, 1e9, latency_seconds=0.5) == 0.5
        with pytest.raises(ValueError):
            checkpoint_cost_seconds(-1, 1e9)
        with pytest.raises(ValueError):
            checkpoint_cost_seconds(10, 0.0)
