"""Unit tests for the IR layer: types, values, opcodes, builder, printer."""

import pytest

from repro.ir import (
    ARITHMETIC_OPCODES,
    ArrayType,
    Constant,
    F64,
    GlobalVariable,
    I32,
    IRBuilder,
    Module,
    Function,
    Opcode,
    PointerType,
    VOID,
    print_function,
    print_module,
)
from repro.ir.instructions import binary_opcode
from repro.ir.opcodes import FORWARDING_OPCODES, MEMORY_OPCODES
from repro.ir.types import scalar_size_bits
from repro.ir.values import Argument, Register


class TestTypes:
    def test_int_size(self):
        assert I32.size_in_bits() == 32
        assert I32.size_in_bytes() == 4

    def test_double_size(self):
        assert F64.size_in_bits() == 64

    def test_pointer_size_is_64(self):
        assert PointerType(F64).size_in_bits() == 64

    def test_array_type_count_and_size(self):
        arr = ArrayType(element=F64, dims=(4, 5))
        assert arr.count == 20
        assert arr.size_in_bytes() == 160

    def test_scalar_size_of_array_is_element_size(self):
        arr = ArrayType(element=I32, dims=(8,))
        assert scalar_size_bits(arr) == 32

    def test_void_has_zero_size(self):
        assert VOID.size_in_bits() == 0

    def test_type_predicates(self):
        assert I32.is_int and not I32.is_float
        assert F64.is_float
        assert PointerType(I32).is_pointer

    def test_str_representations(self):
        assert str(I32) == "i32"
        assert str(F64) == "double"
        assert "x" in str(ArrayType(element=I32, dims=(2, 3)))


class TestOpcodes:
    def test_paper_opcode_numbers(self):
        # The numbers the paper's figures rely on (LLVM 3.4 numbering).
        assert int(Opcode.LOAD) == 27
        assert int(Opcode.ALLOCA) == 26
        assert int(Opcode.STORE) == 28
        assert int(Opcode.GETELEMENTPTR) == 29
        assert int(Opcode.CALL) == 49

    def test_mnemonics(self):
        assert Opcode.LOAD.mnemonic == "Load"
        assert Opcode.FMUL.mnemonic == "FMul"

    def test_arithmetic_set_matches_paper_table1(self):
        for name in ("ADD", "FADD", "SUB", "FSUB", "MUL", "FMUL",
                     "UDIV", "SDIV", "FDIV"):
            assert Opcode[name] in ARITHMETIC_OPCODES

    def test_memory_and_forwarding_sets_disjoint_from_arithmetic(self):
        assert not (MEMORY_OPCODES & ARITHMETIC_OPCODES)
        assert not (FORWARDING_OPCODES & ARITHMETIC_OPCODES)

    def test_binary_opcode_mapping(self):
        assert binary_opcode("+", is_float=False) is Opcode.ADD
        assert binary_opcode("+", is_float=True) is Opcode.FADD
        assert binary_opcode("/", is_float=True) is Opcode.FDIV
        with pytest.raises(ValueError):
            binary_opcode("**", is_float=False)


class TestValues:
    def test_constant_display(self):
        assert Constant(type=I32, value=7).display_name() == "7"

    def test_register_is_register(self):
        reg = Register(type=I32, rid=5)
        assert reg.is_register
        assert reg.display_name() == "5"

    def test_global_variable_size(self):
        gvar = GlobalVariable(type=PointerType(ArrayType(element=F64, dims=(10,))),
                              name="u",
                              value_type=ArrayType(element=F64, dims=(10,)))
        assert gvar.size_in_bytes == 80
        assert gvar.is_array

    def test_argument_display(self):
        arg = Argument(type=F64, name="alpha", index=0)
        assert arg.display_name() == "alpha"


def build_simple_function():
    module = Module(name="m")
    function = Function(name="main", return_type=I32)
    module.add_function(function)
    builder = IRBuilder(module, function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    slot = builder.alloca(I32, "x", line=1)
    builder.store(builder.const_int(41), slot, line=2)
    loaded = builder.load(slot, I32, line=3)
    total = builder.binary(Opcode.ADD, loaded, builder.const_int(1), I32, line=3)
    builder.ret(total, line=4)
    return module, function, builder


class TestBuilderAndModule:
    def test_register_numbering_is_sequential(self):
        _, function, _ = build_simple_function()
        rids = [inst.result.rid for inst in function.instructions()
                if inst.result is not None]
        assert rids == sorted(rids)
        assert len(set(rids)) == len(rids)

    def test_block_terminated_after_ret(self):
        _, function, builder = build_simple_function()
        assert function.entry.is_terminated
        assert builder.current_block_terminated

    def test_instructions_after_terminator_are_dropped(self):
        module, function, builder = build_simple_function()
        before = len(function.entry.instructions)
        builder.store(builder.const_int(0), function.entry.instructions[0].result)
        assert len(function.entry.instructions) == before

    def test_module_bookkeeping(self):
        module, function, _ = build_simple_function()
        assert module.function("main") is function
        assert module.instruction_count() == len(function.entry.instructions)
        with pytest.raises(ValueError):
            module.add_function(Function(name="main"))

    def test_block_successors_from_branch(self):
        module = Module(name="m")
        function = module.add_function(Function(name="main", return_type=VOID))
        builder = IRBuilder(module, function)
        entry = builder.new_block("entry")
        exit_block = builder.new_block("exit")
        builder.set_block(entry)
        builder.br(exit_block)
        builder.set_block(exit_block)
        builder.ret()
        assert entry.successors() == [exit_block]
        assert exit_block.successors() == []

    def test_global_lookup(self):
        module = Module(name="m")
        gvar = GlobalVariable(type=PointerType(I32), name="n", value_type=I32)
        module.add_global(gvar)
        assert module.global_variable("n") is gvar
        with pytest.raises(KeyError):
            module.global_variable("missing")

    def test_printer_contains_key_pieces(self):
        module, _, _ = build_simple_function()
        text = print_module(module)
        assert "define i32 @main" in text
        assert "alloca" in text
        assert "; line" in text

    def test_print_function_for_compiled_example(self, example_module):
        text = print_function(example_module.function("foo"))
        assert "getelementptr" in text
        assert "br" in text
