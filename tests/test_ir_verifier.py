"""Unit tests for the IR verifier."""

import pytest

from repro.ir import (
    F64,
    Function,
    GlobalVariable,
    I32,
    IRBuilder,
    Module,
    Opcode,
    PointerType,
    VOID,
    VerificationError,
    verify_module,
)
from repro.ir.instructions import CmpInst, LoadInst, StoreInst
from repro.ir.values import Register


def make_module_with_main():
    module = Module(name="m")
    function = module.add_function(Function(name="main", return_type=I32))
    builder = IRBuilder(module, function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    return module, function, builder


class TestVerifier:
    def test_valid_module_passes(self, example_module):
        verify_module(example_module)

    def test_empty_module_rejected(self):
        with pytest.raises(VerificationError):
            verify_module(Module(name="m"))

    def test_missing_main_rejected(self):
        module = Module(name="m")
        function = module.add_function(Function(name="helper", return_type=VOID))
        builder = IRBuilder(module, function)
        builder.set_block(builder.new_block())
        builder.ret()
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_missing_terminator_rejected(self):
        module, function, builder = make_module_with_main()
        builder.alloca(I32, "x")
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(module)

    def test_empty_block_rejected(self):
        module, function, builder = make_module_with_main()
        builder.ret(builder.const_int(0))
        function.add_block("dangling")
        with pytest.raises(VerificationError, match="empty"):
            verify_module(module)

    def test_use_of_undefined_register_rejected(self):
        module, function, builder = make_module_with_main()
        ghost = Register(type=I32, rid=999)
        builder.binary(Opcode.ADD, ghost, builder.const_int(1), I32)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="undefined register"):
            verify_module(module)

    def test_duplicate_register_definition_rejected(self):
        module, function, builder = make_module_with_main()
        slot = builder.alloca(I32, "x")
        dup = LoadInst(opcode=Opcode.LOAD, operands=[slot],
                       result=Register(type=I32, rid=slot.rid))
        function.entry.append(dup)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="defined twice"):
            verify_module(module)

    def test_store_through_non_pointer_rejected(self):
        module, function, builder = make_module_with_main()
        value = builder.binary(Opcode.ADD, builder.const_int(1),
                               builder.const_int(2), I32)
        bad = StoreInst(opcode=Opcode.STORE,
                        operands=[builder.const_int(0), value], result=None)
        function.entry.append(bad)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="pointer"):
            verify_module(module)

    def test_call_to_unknown_function_rejected(self):
        module, function, builder = make_module_with_main()
        builder.call("nonexistent", [], VOID, is_builtin=False)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="undefined function"):
            verify_module(module)

    def test_unknown_builtin_rejected(self):
        module, function, builder = make_module_with_main()
        builder.call("made_up_builtin", [], F64, is_builtin=True)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="builtin"):
            verify_module(module)

    def test_branch_to_foreign_block_rejected(self):
        module, function, builder = make_module_with_main()
        other_module, other_function, other_builder = make_module_with_main()
        foreign = other_builder.new_block()
        builder.br(foreign)
        with pytest.raises(VerificationError, match="branch target"):
            verify_module(module)

    def test_duplicate_global_names_rejected(self):
        module, function, builder = make_module_with_main()
        builder.ret(builder.const_int(0))
        module.add_global(GlobalVariable(type=PointerType(I32), name="g",
                                         value_type=I32))
        module.add_global(GlobalVariable(type=PointerType(I32), name="g",
                                         value_type=I32))
        with pytest.raises(VerificationError, match="duplicate global"):
            verify_module(module)

    def test_alloca_without_name_rejected(self):
        module, function, builder = make_module_with_main()
        builder.alloca(I32, "")
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="alloca"):
            verify_module(module)

    def test_cmp_predicate_validation(self):
        with pytest.raises(ValueError):
            CmpInst(opcode=Opcode.ICMP, operands=[], result=None,
                    predicate="bogus")


class TestFlowSensitiveChecks:
    def test_unreachable_block_rejected(self):
        module, function, builder = make_module_with_main()
        builder.ret(builder.const_int(0))
        orphan = builder.new_block("orphan")
        builder.set_block(orphan)
        builder.ret(builder.const_int(1))
        with pytest.raises(VerificationError, match="unreachable block"):
            verify_module(module)

    def test_unreachable_block_error_names_function_and_block(self):
        module, function, builder = make_module_with_main()
        builder.ret(builder.const_int(0))
        orphan = builder.new_block("orphan")
        builder.set_block(orphan)
        builder.ret(builder.const_int(1))
        with pytest.raises(VerificationError) as excinfo:
            verify_module(module)
        assert excinfo.value.function == "main"
        assert excinfo.value.block == "orphan"
        assert "main/orphan" in str(excinfo.value)

    def test_use_not_dominated_by_definition_rejected(self):
        module, function, builder = make_module_with_main()
        slot = builder.alloca(I32, "c")
        cond = builder.load(slot, I32)
        then_block = builder.new_block("then")
        else_block = builder.new_block("else")
        join_block = builder.new_block("join")
        builder.cond_br(cond, then_block, else_block)
        builder.set_block(then_block)
        partial = builder.binary(Opcode.ADD, builder.const_int(1),
                                 builder.const_int(2), I32)
        builder.br(join_block)
        builder.set_block(else_block)
        builder.br(join_block)
        builder.set_block(join_block)
        builder.binary(Opcode.ADD, partial, builder.const_int(3), I32)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="not.*dominated"):
            verify_module(module)

    def test_same_block_use_before_def_rejected(self):
        module, function, builder = make_module_with_main()
        slot = builder.alloca(I32, "x")
        ghost_load = LoadInst(opcode=Opcode.LOAD, operands=[slot],
                              result=Register(type=I32, rid=777))
        use = builder.binary(Opcode.ADD, ghost_load.result,
                             builder.const_int(1), I32)
        # Define %777 *after* its use in the same block.
        index = function.entry.instructions.index(
            next(i for i in function.entry.instructions
                 if i.result is use))
        function.entry.instructions.insert(index + 1, ghost_load)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="not.*dominated"):
            verify_module(module)

    def test_dominance_error_carries_instruction_index(self):
        module, function, builder = make_module_with_main()
        slot = builder.alloca(I32, "c")
        cond = builder.load(slot, I32)
        then_block = builder.new_block("then")
        join_block = builder.new_block("join")
        builder.cond_br(cond, then_block, join_block)
        builder.set_block(then_block)
        partial = builder.binary(Opcode.ADD, builder.const_int(1),
                                 builder.const_int(2), I32)
        builder.br(join_block)
        builder.set_block(join_block)
        builder.binary(Opcode.ADD, partial, builder.const_int(3), I32)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError) as excinfo:
            verify_module(module)
        error = excinfo.value
        assert error.function == "main"
        assert error.block == "join"
        assert error.instruction_index == 0

    def test_structural_errors_fire_before_reachability(self):
        """A dangling *empty* block must still report "empty", not
        "unreachable" — the structural pass runs first."""
        module, function, builder = make_module_with_main()
        builder.ret(builder.const_int(0))
        function.add_block("dangling")
        with pytest.raises(VerificationError, match="empty"):
            verify_module(module)

    def test_undefined_register_error_context(self):
        module, function, builder = make_module_with_main()
        ghost = Register(type=I32, rid=999)
        builder.binary(Opcode.ADD, ghost, builder.const_int(1), I32)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError) as excinfo:
            verify_module(module)
        error = excinfo.value
        assert error.function == "main"
        assert error.block == "entry"
        assert error.instruction_index is not None
