"""Unit tests for the IR verifier."""

import pytest

from repro.ir import (
    F64,
    Function,
    GlobalVariable,
    I32,
    IRBuilder,
    Module,
    Opcode,
    PointerType,
    VOID,
    VerificationError,
    verify_module,
)
from repro.ir.instructions import CmpInst, LoadInst, StoreInst
from repro.ir.values import Register


def make_module_with_main():
    module = Module(name="m")
    function = module.add_function(Function(name="main", return_type=I32))
    builder = IRBuilder(module, function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    return module, function, builder


class TestVerifier:
    def test_valid_module_passes(self, example_module):
        verify_module(example_module)

    def test_empty_module_rejected(self):
        with pytest.raises(VerificationError):
            verify_module(Module(name="m"))

    def test_missing_main_rejected(self):
        module = Module(name="m")
        function = module.add_function(Function(name="helper", return_type=VOID))
        builder = IRBuilder(module, function)
        builder.set_block(builder.new_block())
        builder.ret()
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_missing_terminator_rejected(self):
        module, function, builder = make_module_with_main()
        builder.alloca(I32, "x")
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(module)

    def test_empty_block_rejected(self):
        module, function, builder = make_module_with_main()
        builder.ret(builder.const_int(0))
        function.add_block("dangling")
        with pytest.raises(VerificationError, match="empty"):
            verify_module(module)

    def test_use_of_undefined_register_rejected(self):
        module, function, builder = make_module_with_main()
        ghost = Register(type=I32, rid=999)
        builder.binary(Opcode.ADD, ghost, builder.const_int(1), I32)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="undefined register"):
            verify_module(module)

    def test_duplicate_register_definition_rejected(self):
        module, function, builder = make_module_with_main()
        slot = builder.alloca(I32, "x")
        dup = LoadInst(opcode=Opcode.LOAD, operands=[slot],
                       result=Register(type=I32, rid=slot.rid))
        function.entry.append(dup)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="defined twice"):
            verify_module(module)

    def test_store_through_non_pointer_rejected(self):
        module, function, builder = make_module_with_main()
        value = builder.binary(Opcode.ADD, builder.const_int(1),
                               builder.const_int(2), I32)
        bad = StoreInst(opcode=Opcode.STORE,
                        operands=[builder.const_int(0), value], result=None)
        function.entry.append(bad)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="pointer"):
            verify_module(module)

    def test_call_to_unknown_function_rejected(self):
        module, function, builder = make_module_with_main()
        builder.call("nonexistent", [], VOID, is_builtin=False)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="undefined function"):
            verify_module(module)

    def test_unknown_builtin_rejected(self):
        module, function, builder = make_module_with_main()
        builder.call("made_up_builtin", [], F64, is_builtin=True)
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="builtin"):
            verify_module(module)

    def test_branch_to_foreign_block_rejected(self):
        module, function, builder = make_module_with_main()
        other_module, other_function, other_builder = make_module_with_main()
        foreign = other_builder.new_block()
        builder.br(foreign)
        with pytest.raises(VerificationError, match="branch target"):
            verify_module(module)

    def test_duplicate_global_names_rejected(self):
        module, function, builder = make_module_with_main()
        builder.ret(builder.const_int(0))
        module.add_global(GlobalVariable(type=PointerType(I32), name="g",
                                         value_type=I32))
        module.add_global(GlobalVariable(type=PointerType(I32), name="g",
                                         value_type=I32))
        with pytest.raises(VerificationError, match="duplicate global"):
            verify_module(module)

    def test_alloca_without_name_rejected(self):
        module, function, builder = make_module_with_main()
        builder.alloca(I32, "")
        builder.ret(builder.const_int(0))
        with pytest.raises(VerificationError, match="alloca"):
            verify_module(module)

    def test_cmp_predicate_validation(self):
        with pytest.raises(ValueError):
            CmpInst(opcode=Opcode.ICMP, operands=[], result=None,
                    predicate="bogus")
