"""Unit tests for the mini-C lexer."""

import pytest

from repro.minicc.errors import LexError
from repro.minicc.lexer import find_token, token_kinds, tokenize
from repro.minicc.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        tokens = tokenize("   \n\t  \n")
        assert [t.kind for t in tokens] == [TokenKind.EOF]

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_LIT
        assert token.value == 42

    def test_float_literal(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == pytest.approx(3.25)

    def test_float_with_exponent(self):
        token = tokenize("1e3")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == pytest.approx(1000.0)

    def test_float_with_negative_exponent(self):
        token = tokenize("2.5e-2")[0]
        assert token.value == pytest.approx(0.025)

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == pytest.approx(0.5)

    def test_identifier(self):
        token = tokenize("rtrans_1")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "rtrans_1"

    def test_identifier_with_leading_underscore(self):
        token = tokenize("_tmp")[0]
        assert token.kind is TokenKind.IDENT

    def test_string_literal(self):
        token = tokenize('"hello world"')[0]
        assert token.kind is TokenKind.STRING_LIT
        assert token.value == "hello world"

    def test_string_escapes(self):
        token = tokenize(r'"a\nb\tc"')[0]
        assert token.value == "a\nb\tc"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')


class TestKeywordsAndOperators:
    @pytest.mark.parametrize("text,kind", [
        ("int", TokenKind.KW_INT),
        ("double", TokenKind.KW_DOUBLE),
        ("void", TokenKind.KW_VOID),
        ("for", TokenKind.KW_FOR),
        ("while", TokenKind.KW_WHILE),
        ("if", TokenKind.KW_IF),
        ("else", TokenKind.KW_ELSE),
        ("return", TokenKind.KW_RETURN),
        ("break", TokenKind.KW_BREAK),
        ("continue", TokenKind.KW_CONTINUE),
        ("print", TokenKind.KW_PRINT),
    ])
    def test_keyword(self, text, kind):
        assert tokenize(text)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("formula")[0].kind is TokenKind.IDENT

    @pytest.mark.parametrize("text,kind", [
        ("==", TokenKind.EQ), ("!=", TokenKind.NE), ("<=", TokenKind.LE),
        (">=", TokenKind.GE), ("&&", TokenKind.AND_AND), ("||", TokenKind.OR_OR),
        ("++", TokenKind.PLUS_PLUS), ("--", TokenKind.MINUS_MINUS),
        ("+=", TokenKind.PLUS_ASSIGN), ("-=", TokenKind.MINUS_ASSIGN),
        ("*=", TokenKind.STAR_ASSIGN), ("/=", TokenKind.SLASH_ASSIGN),
    ])
    def test_two_char_operator(self, text, kind):
        assert tokenize(text)[0].kind is kind

    @pytest.mark.parametrize("text,kind", [
        ("+", TokenKind.PLUS), ("-", TokenKind.MINUS), ("*", TokenKind.STAR),
        ("/", TokenKind.SLASH), ("%", TokenKind.PERCENT), ("<", TokenKind.LT),
        (">", TokenKind.GT), ("=", TokenKind.ASSIGN), ("!", TokenKind.NOT),
        (";", TokenKind.SEMICOLON), (",", TokenKind.COMMA),
        ("(", TokenKind.LPAREN), (")", TokenKind.RPAREN),
        ("{", TokenKind.LBRACE), ("}", TokenKind.RBRACE),
        ("[", TokenKind.LBRACKET), ("]", TokenKind.RBRACKET),
    ])
    def test_one_char_operator(self, text, kind):
        assert tokenize(text)[0].kind is kind

    def test_operator_sequence_without_spaces(self):
        assert kinds("a+=b*2;") == [
            TokenKind.IDENT, TokenKind.PLUS_ASSIGN, TokenKind.IDENT,
            TokenKind.STAR, TokenKind.INT_LIT, TokenKind.SEMICOLON]

    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("a = 3 @ 4;")
        assert "@" in str(err.value)


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert kinds("a // comment here\n b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment_skipped(self):
        assert kinds("a /* ignore\n me */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_numbers(self):
        tokens = tokenize("int a;\nint b;\n\nint c;")
        lines = [t.line for t in tokens if t.kind is TokenKind.IDENT]
        assert lines == [1, 2, 4]

    def test_column_numbers(self):
        tokens = tokenize("  x = 1;")
        x_token = find_token(tokens, "x")
        assert x_token is not None
        assert x_token.column == 3

    def test_lines_tracked_through_comments(self):
        tokens = tokenize("/* one\n two\n three */ x")
        x_token = find_token(tokens, "x")
        assert x_token.line == 3

    def test_division_not_confused_with_comment(self):
        assert kinds("a / b") == [TokenKind.IDENT, TokenKind.SLASH, TokenKind.IDENT]


class TestHelpers:
    def test_token_kinds_helper(self):
        tokens = tokenize("int x;")
        assert token_kinds(tokens)[:3] == [
            TokenKind.KW_INT, TokenKind.IDENT, TokenKind.SEMICOLON]

    def test_find_token_missing(self):
        assert find_token(tokenize("a b"), "zzz") is None

    def test_full_program_tokenizes(self, example_source):
        tokens = tokenize(example_source)
        assert tokens[-1].kind is TokenKind.EOF
        assert len(tokens) > 100
