"""Fleet-wide necessity regression: the detector detects, on every app.

Two claims, fleet-wide:

* **Necessity** — for every bundled app, dropping any one output-sensitive
  critical variable from the restart corrupts the restarted output (paper
  Sec. VI-B: no false positives among the detected variables).
* **The detector detects** — a deliberately-padded protected set (the
  critical variables plus one variable AutoCheck did *not* select) must be
  flagged: the pad shows up in ``false_positives``, the real variables do
  not.  This guards against the ablation machinery rotting into a study
  that calls everything necessary (or nothing).
"""

import pytest

from repro.apps.registry import app_names, get_app
from repro.checkpoint.fti import FTIConfig
from repro.checkpoint.instrument import CheckpointInstrumenter
from repro.checkpoint.validate import RestartValidator
from repro.experiments.common import analyze_app

FLEET = app_names(include_example=True, include_extras=True)

#: Apps whose padded-set run doubles as the detector-detects check.
PADDED_SAMPLE = ["example", "cg", "himeno"]


def _small_params(name):
    """Keep the heavyweight apps affordable for a per-app ablation."""
    return {"bigarray": {"size": 512, "iterations": 6},
            "mg": {"n": 24, "iters": 5}}.get(name, {})


@pytest.fixture(scope="module")
def fleet_analyses():
    """name -> (analysis, loop variable sizes) for the whole fleet."""
    analyses = {}
    for name in FLEET:
        app = get_app(name)
        analysis = analyze_app(app, params=_small_params(name))
        analyses[name] = analysis
    return analyses


def _loop_variables(analysis, tmp_path):
    """Variables live at the app's main loop (a failure-free baseline)."""
    instrumenter = CheckpointInstrumenter(
        analysis.module, analysis.report.main_loop, [],
        FTIConfig(directory=str(tmp_path / "baseline")))
    baseline = instrumenter.run()
    assert not baseline.failed
    return baseline.loop_variables


@pytest.mark.parametrize("name", FLEET)
def test_dropping_any_critical_variable_corrupts_restart(name,
                                                         fleet_analyses):
    analysis = fleet_analyses[name]
    critical = analysis.report.names()
    assert critical, f"{name}: analysis found no critical variables"
    checked = [variable for variable in get_app(name).necessity_variables()
               if variable in critical]
    assert checked, f"{name}: no output-sensitive variables to ablate"
    with RestartValidator(analysis.module, analysis.report.main_loop,
                          benchmark=name) as validator:
        result = validator.necessity_study(critical,
                                           check_variables=checked)
    assert result.all_necessary, (
        f"{name}: dropping {result.false_positives} from the restart went "
        f"unnoticed — necessity violated")


@pytest.mark.parametrize("name", PADDED_SAMPLE)
def test_padded_set_is_flagged_as_false_positive(name, fleet_analyses,
                                                 tmp_path):
    analysis = fleet_analyses[name]
    critical = analysis.report.names()
    mli = set(analysis.report.mli_variable_names)
    live = _loop_variables(analysis, tmp_path)
    pads = [variable for variable in live
            if variable not in critical and variable not in mli]
    assert pads, f"{name}: no candidate pad variable found"
    pad = sorted(pads)[0]

    checked = [variable for variable in get_app(name).necessity_variables()
               if variable in critical]
    padded = critical + [pad]
    with RestartValidator(analysis.module, analysis.report.main_loop,
                          benchmark=name) as validator:
        result = validator.necessity_study(padded,
                                           check_variables=checked + [pad])
    assert pad in result.false_positives, (
        f"{name}: the deliberately-padded variable {pad!r} was not flagged")
    real_flagged = [variable for variable in result.false_positives
                    if variable != pad]
    assert not real_flagged, (
        f"{name}: genuine critical variables flagged as false positives: "
        f"{real_flagged}")
