"""Unit tests for the mini-C parser."""

import pytest

from repro.minicc import ast_nodes as ast
from repro.minicc.errors import ParseError
from repro.minicc.parser import parse_program


def parse_main_body(body: str) -> ast.FuncDef:
    program = parse_program("int main() {\n" + body + "\nreturn 0;\n}")
    return program.function("main")


def first_stmt(body: str) -> ast.Stmt:
    return parse_main_body(body).body.statements[0]


class TestTopLevel:
    def test_global_scalar(self):
        program = parse_program("int counter;\nint main() { return 0; }")
        assert program.global_names() == ["counter"]
        assert isinstance(program.globals[0].ctype, ast.IntType)

    def test_global_with_initializer(self):
        program = parse_program("double pi = 3.14;\nint main() { return 0; }")
        assert isinstance(program.globals[0].init, ast.FloatLiteral)

    def test_global_array(self):
        program = parse_program("double u[4][5];\nint main() { return 0; }")
        ctype = program.globals[0].ctype
        assert isinstance(ctype, ast.ArrayType)
        assert ctype.dims == (4, 5)

    def test_multiple_declarators(self):
        program = parse_program("int a, b, c;\nint main() { return 0; }")
        assert program.global_names() == ["a", "b", "c"]

    def test_function_with_params(self):
        program = parse_program(
            "void foo(int *p, double x, double u[4][4]) {}\n"
            "int main() { return 0; }")
        foo = program.function("foo")
        assert [p.name for p in foo.params] == ["p", "x", "u"]
        assert isinstance(foo.params[0].ctype, ast.PointerType)
        assert isinstance(foo.params[1].ctype, ast.DoubleType)
        assert isinstance(foo.params[2].ctype, ast.PointerType)
        assert foo.params[2].ctype.dims == (4, 4)

    def test_missing_main_is_parse_ok(self):
        # The parser itself does not require main; sema does.
        program = parse_program("void foo() {}")
        assert "foo" in [f.name for f in program.functions]

    def test_unknown_top_level_token(self):
        with pytest.raises(ParseError):
            parse_program("banana main() {}")

    def test_function_lookup_keyerror(self):
        program = parse_program("int main() { return 0; }")
        with pytest.raises(KeyError):
            program.function("nope")


class TestStatements:
    def test_declaration_statement(self):
        stmt = first_stmt("int x = 3;")
        assert isinstance(stmt, ast.DeclStmt)
        assert stmt.decls[0].name == "x"
        assert isinstance(stmt.decls[0].init, ast.IntLiteral)

    def test_array_declaration(self):
        stmt = first_stmt("double buf[7];")
        assert isinstance(stmt.decls[0].ctype, ast.ArrayType)
        assert stmt.decls[0].ctype.dims == (7,)

    def test_for_loop_structure(self):
        stmt = first_stmt("for (int i = 0; i < 10; ++i) { }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)
        assert isinstance(stmt.cond, ast.BinaryOp)
        assert isinstance(stmt.step, ast.IncDec)
        assert stmt.step.is_prefix

    def test_for_loop_with_expression_init(self):
        stmt = first_stmt("int i; for (i = 0; i < 4; i = i + 1) { }")
        for_stmt = parse_main_body("int i; for (i = 0; i < 4; i = i + 1) { }").body.statements[1]
        assert isinstance(for_stmt, ast.For)
        assert isinstance(for_stmt.init, ast.ExprStmt)

    def test_for_loop_empty_clauses(self):
        stmt = first_stmt("for (;;) { break; }")
        assert isinstance(stmt, ast.For)
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_loop(self):
        stmt = first_stmt("while (1) { break; }")
        assert isinstance(stmt, ast.While)

    def test_if_else(self):
        stmt = first_stmt("if (1) { } else { }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is not None

    def test_if_without_else(self):
        stmt = first_stmt("if (1) { }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is None

    def test_break_continue(self):
        body = parse_main_body("while (1) { break; continue; }").body
        loop = body.statements[0]
        inner = loop.body.statements
        assert isinstance(inner[0], ast.Break)
        assert isinstance(inner[1], ast.Continue)

    def test_print_statement(self):
        stmt = first_stmt('print("value", 42);')
        assert isinstance(stmt, ast.Print)
        assert isinstance(stmt.args[0], ast.StringLiteral)
        assert isinstance(stmt.args[1], ast.IntLiteral)

    def test_return_void(self):
        program = parse_program("void f() { return; }\nint main() { return 0; }")
        ret = program.function("f").body.statements[0]
        assert isinstance(ret, ast.Return)
        assert ret.value is None

    def test_nested_blocks(self):
        stmt = first_stmt("{ int x; { int y; } }")
        assert isinstance(stmt, ast.Block)
        assert isinstance(stmt.statements[1], ast.Block)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_main_body("int x = 3")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        stmt = first_stmt("int x = 1 + 2 * 3;")
        init = stmt.decls[0].init
        assert isinstance(init, ast.BinaryOp)
        assert init.op == "+"
        assert isinstance(init.right, ast.BinaryOp)
        assert init.right.op == "*"

    def test_parentheses_override_precedence(self):
        stmt = first_stmt("int x = (1 + 2) * 3;")
        init = stmt.decls[0].init
        assert init.op == "*"
        assert init.left.op == "+"

    def test_comparison_and_logic(self):
        stmt = first_stmt("int x = a < 3 && b >= 2 || !c;")
        init = stmt.decls[0].init
        assert init.op == "||"
        assert init.left.op == "&&"
        assert isinstance(init.right, ast.UnaryOp)

    def test_assignment_right_associative(self):
        stmt = first_stmt("a = b = 3;")
        expr = stmt.expr
        assert isinstance(expr, ast.Assignment)
        assert isinstance(expr.value, ast.Assignment)

    def test_compound_assignment(self):
        stmt = first_stmt("total += 4;")
        assert isinstance(stmt.expr, ast.Assignment)
        assert stmt.expr.op == "+="

    def test_array_index_multi_dim(self):
        stmt = first_stmt("u[1][2] = 3.0;")
        target = stmt.expr.target
        assert isinstance(target, ast.ArrayIndex)
        assert target.base.name == "u"
        assert len(target.indices) == 2

    def test_call_expression(self):
        stmt = first_stmt("double y = pow(2.0, 8.0);")
        init = stmt.decls[0].init
        assert isinstance(init, ast.Call)
        assert init.callee == "pow"
        assert len(init.args) == 2

    def test_call_no_args(self):
        stmt = first_stmt("double t = clock();")
        assert isinstance(stmt.decls[0].init, ast.Call)

    def test_postfix_increment(self):
        stmt = first_stmt("r++;")
        assert isinstance(stmt.expr, ast.IncDec)
        assert not stmt.expr.is_prefix

    def test_unary_minus(self):
        stmt = first_stmt("int x = -5;")
        assert isinstance(stmt.decls[0].init, ast.UnaryOp)

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body("3 = x;")

    def test_incdec_on_call_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body("++foo();")

    def test_array_base_must_be_identifier(self):
        with pytest.raises(ParseError):
            parse_main_body("(a + b)[0] = 1;")

    def test_line_information_on_nodes(self):
        program = parse_program("int main() {\n  int x = 1;\n  x = 2;\n  return 0;\n}")
        statements = program.function("main").body.statements
        assert statements[0].line == 2
        assert statements[1].line == 3

    def test_example_program_parses(self, example_source):
        program = parse_program(example_source)
        assert {f.name for f in program.functions} == {"foo", "main"}

    def test_walk_visits_nested_nodes(self):
        program = parse_program("int main() { int x = 1 + 2; return x; }")
        kinds = {type(node).__name__ for node in ast.walk(program)}
        assert "BinaryOp" in kinds
        assert "Return" in kinds
