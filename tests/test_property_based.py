"""Property-based tests (hypothesis) for core data structures and invariants.

Covered properties:

* lexer totality and token-position monotonicity over arbitrary identifier /
  number / operator soups;
* memory model read-after-write consistency under arbitrary operation
  sequences;
* trace text encoding round-trips arbitrary records exactly;
* the block-indexed binary encoding round-trips arbitrary traces exactly
  (including multi-byte identifiers, commas/newlines in names and >64-bit
  integer values the text format cannot represent);
* block-aligned parallel trace reading equals serial reading for arbitrary
  traces and worker counts, for both encodings — with multi-byte
  identifiers in the mix so byte/character confusion cannot reappear;
* Algorithm-1 DDG contraction soundness on random graphs (contracted parents
  = MLI ancestors reachable through non-MLI chains), idempotence, and
  completion-within-deadline on dense multi-thousand-register webs (where
  the pre-BFS expansion loop used to time out);
* deterministic RNG stays within bounds and is reproducible.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.contraction import contract_ddg, contraction_is_sound
from repro.core.ddg import DDG, NodeKind
from repro.minicc.lexer import tokenize
from repro.minicc.tokens import TokenKind
from repro.trace.binio import (
    read_trace_file_binary,
    read_trace_file_binary_parallel,
    write_trace_file_binary,
)
from repro.trace.partition import partition_offsets, read_trace_file_parallel
from repro.trace.records import GlobalSymbol, Trace, TraceOperand, TraceRecord
from repro.trace.textio import (
    parse_record_lines,
    read_trace_file,
    record_to_lines,
    write_trace_file,
)
from repro.tracer.memory import Memory
from repro.util.formatting import format_bytes
from repro.util.rng import DeterministicRNG

# --------------------------------------------------------------------------- #
# Lexer
# --------------------------------------------------------------------------- #
_identifier = st.text(alphabet=string.ascii_letters + "_", min_size=1, max_size=8)
_number = st.one_of(
    st.integers(min_value=0, max_value=10**9).map(str),
    st.floats(min_value=0, max_value=1e6, allow_nan=False,
              allow_infinity=False).map(lambda v: f"{v:.4f}"),
)
_operator = st.sampled_from(["+", "-", "*", "/", "%", "==", "<=", ">=", "&&",
                             "||", "=", "+=", ";", ",", "(", ")", "[", "]",
                             "{", "}", "<", ">"])


@given(st.lists(st.one_of(_identifier, _number, _operator), max_size=40))
@settings(max_examples=60, deadline=None)
def test_lexer_total_on_token_soup(pieces):
    source = " ".join(pieces)
    tokens = tokenize(source)
    assert tokens[-1].kind is TokenKind.EOF
    # positions never go backwards
    positions = [(t.line, t.column) for t in tokens[:-1]]
    assert positions == sorted(positions)


@given(st.lists(_identifier, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_lexer_preserves_identifier_count(names):
    source = "\n".join(names)
    tokens = [t for t in tokenize(source) if t.kind is not TokenKind.EOF]
    assert len(tokens) == len(names)
    assert [t.text for t in tokens] == names


# --------------------------------------------------------------------------- #
# Memory model
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                          st.one_of(st.integers(min_value=-1000, max_value=1000),
                                    st.floats(allow_nan=False, allow_infinity=False,
                                              width=32))),
                max_size=100))
@settings(max_examples=60, deadline=None)
def test_memory_last_write_wins(operations):
    memory = Memory()
    allocation = memory.allocate_global("v", 64, 64, True)
    expected = {}
    for offset, value in operations:
        address = allocation.address + offset * 8
        memory.store(address, value)
        expected[offset] = value
    block = memory.read_block(allocation)
    for offset, value in expected.items():
        assert block[offset] == value
    untouched = set(range(64)) - set(expected)
    for offset in untouched:
        assert block[offset] == 0


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_memory_stack_allocations_never_overlap_globals(sizes):
    memory = Memory()
    global_alloc = memory.allocate_global("g", 64, 32, True)
    allocations = [memory.allocate_stack(f"v{i}", 64, size, True, "main")
                   for i, size in enumerate(sizes)]
    intervals = [(a.address, a.end_address) for a in allocations]
    intervals.append((global_alloc.address, global_alloc.end_address))
    intervals.sort()
    for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
        assert end_a <= start_b


# --------------------------------------------------------------------------- #
# Trace encoding round trip
# --------------------------------------------------------------------------- #
#: Trace identifiers deliberately include multi-byte characters so that any
#: byte/character confusion in the file readers surfaces as a property
#: failure (the old partitioner seeked text-mode handles with byte offsets).
_trace_name = st.text(alphabet=string.ascii_letters + "_éλπ变Δß",
                      max_size=6)

_operand_strategy = st.builds(
    TraceOperand,
    index=st.sampled_from(["1", "2", "3", "p1", "p2"]),
    bits=st.sampled_from([32, 64]),
    value=st.one_of(st.integers(min_value=-2**70, max_value=2**70),
                    st.floats(allow_nan=False, allow_infinity=False)),
    is_register=st.booleans(),
    name=_trace_name,
    address=st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)),
)

_record_strategy = st.builds(
    TraceRecord,
    dyn_id=st.integers(min_value=1, max_value=10**6),
    opcode=st.sampled_from([8, 9, 12, 26, 27, 28, 29, 44, 46, 49]),
    opcode_name=st.sampled_from(["Add", "FAdd", "Mul", "Alloca", "Load",
                                 "Store", "GetElementPtr", "BitCast", "ICmp",
                                 "Call"]),
    function=_trace_name,
    line=st.integers(min_value=0, max_value=9999),
    column=st.integers(min_value=0, max_value=200),
    bb_label=st.integers(min_value=0, max_value=50),
    bb_id=st.sampled_from(["1:0", "12:3", "100:7"]),
    operands=st.lists(_operand_strategy, max_size=4),
    result=st.one_of(st.none(), _operand_strategy),
    callee=st.sampled_from(["", "foo", "sqrt", "print"]),
)

#: Names the text format rejects (commas/newlines) are fair game in binary.
_binary_name = st.text(
    alphabet=string.ascii_letters + "_éλπ变Δß,\n\r", max_size=6)

_binary_operand_strategy = st.builds(
    TraceOperand,
    index=st.sampled_from(["1", "2", "3", "p1", "r"]),
    bits=st.sampled_from([32, 64]),
    value=st.one_of(st.integers(min_value=-2**100, max_value=2**100),
                    st.floats(allow_nan=False)),
    is_register=st.booleans(),
    name=_binary_name,
    address=st.one_of(st.none(), st.integers(min_value=0, max_value=2**60)),
)

_binary_record_strategy = st.builds(
    TraceRecord,
    dyn_id=st.integers(min_value=1, max_value=10**9),
    opcode=st.integers(min_value=0, max_value=2**30),
    opcode_name=_binary_name,
    function=_binary_name,
    line=st.integers(min_value=0, max_value=10**6),
    column=st.integers(min_value=0, max_value=10**4),
    bb_label=st.integers(min_value=0, max_value=10**6),
    bb_id=_binary_name,
    operands=st.lists(_binary_operand_strategy, max_size=4),
    result=st.one_of(st.none(), _binary_operand_strategy),
    callee=_binary_name,
)


@given(_record_strategy)
@settings(max_examples=80, deadline=None)
def test_trace_record_text_roundtrip(record):
    parsed = parse_record_lines(record_to_lines(record))
    assert len(parsed) == 1
    out = parsed[0]
    assert out.dyn_id == record.dyn_id
    assert out.opcode == record.opcode
    assert out.function == record.function
    assert out.line == record.line
    assert out.callee == record.callee
    assert len(out.operands) == len(record.operands)
    for left, right in zip(record.operands, out.operands):
        assert left.name == right.name
        assert left.address == right.address
        assert left.is_register == right.is_register
        assert left.value == pytest.approx(right.value, nan_ok=True)
    assert (out.result is None) == (record.result is None)


@given(st.lists(_record_strategy, min_size=1, max_size=30),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_parallel_trace_read_equals_serial(tmp_path_factory, records, workers):
    # renumber dynamic ids so ordering is well defined, and canonicalise the
    # result index (the text encoding does not store it — it is always "r")
    for index, record in enumerate(records):
        record.dyn_id = index + 1
        if record.result is not None:
            record.result.index = "r"
    trace = Trace(module_name="prop",
                  globals=[GlobalSymbol("g", 0x1000, 16, 64, True)],
                  records=records)
    path = str(tmp_path_factory.mktemp("prop") / "prop.trace")
    write_trace_file(trace, path)

    serial = read_trace_file(path)
    parallel = read_trace_file_parallel(path, num_workers=workers)
    # full record equality, not just dyn_id/opcode projections
    assert serial.records == trace.records
    assert parallel.records == serial.records

    partitions = partition_offsets(path, workers)
    assert partitions[0].start == 0
    assert sum(p.size for p in partitions) == partitions[-1].end


@given(st.lists(_binary_record_strategy, max_size=30))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_trace_binary_roundtrip(tmp_path_factory, records):
    trace = Trace(module_name="binäry,prop",
                  globals=[GlobalSymbol("号g", 0x1000, 16, 64, True)],
                  records=records)
    path = str(tmp_path_factory.mktemp("prop") / "prop.btrace")
    write_trace_file_binary(trace, path)
    loaded = read_trace_file_binary(path)
    assert loaded.module_name == trace.module_name
    assert loaded.globals == trace.globals
    assert len(loaded.records) == len(trace.records)
    for left, right in zip(trace.records, loaded.records):
        assert left == right
        # value types survive exactly (int stays int, float stays float)
        for l_op, r_op in zip(left.operands, right.operands):
            assert type(l_op.value) is type(r_op.value) or (
                isinstance(l_op.value, bool) and r_op.value == int(l_op.value))


@given(st.lists(_binary_record_strategy, min_size=1, max_size=30),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_binary_parallel_read_equals_serial(tmp_path_factory, records, workers):
    trace = Trace(module_name="prop", records=records)
    path = str(tmp_path_factory.mktemp("prop") / "prop.btrace")
    write_trace_file_binary(trace, path)
    serial = read_trace_file_binary(path)
    parallel = read_trace_file_binary_parallel(path, num_workers=workers)
    assert serial.records == trace.records
    assert parallel.records == serial.records


# --------------------------------------------------------------------------- #
# DDG contraction
# --------------------------------------------------------------------------- #
@st.composite
def random_ddg(draw):
    n_mli = draw(st.integers(min_value=1, max_value=5))
    n_other = draw(st.integers(min_value=0, max_value=8))
    ddg = DDG()
    mli_keys = [f"v{i}" for i in range(n_mli)]
    other_keys = [f"t{i}" for i in range(n_other)]
    for key in mli_keys:
        ddg.add_node(key, NodeKind.MLI, key)
    for index, key in enumerate(other_keys):
        kind = NodeKind.REGISTER if index % 2 == 0 else NodeKind.LOCAL
        ddg.add_node(key, kind, key)
    all_keys = mli_keys + other_keys
    max_edges = len(all_keys) * 2
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(n_edges):
        parent = draw(st.sampled_from(all_keys))
        child = draw(st.sampled_from(all_keys))
        ddg.add_edge(parent, child)
    return ddg, set(mli_keys)


@given(random_ddg())
@settings(max_examples=80, deadline=None)
def test_contraction_keeps_only_mli_and_is_sound(data):
    ddg, mli_keys = data
    contracted = contract_ddg(ddg, mli_keys)
    assert set(contracted.node_keys()) <= mli_keys
    assert contraction_is_sound(ddg, contracted, mli_keys)


@given(random_ddg())
@settings(max_examples=40, deadline=None)
def test_contraction_is_idempotent(data):
    ddg, mli_keys = data
    once = contract_ddg(ddg, mli_keys)
    twice = contract_ddg(once, mli_keys)
    assert set(once.node_keys()) == set(twice.node_keys())
    assert set(once.edges()) == set(twice.edges())


@given(random_ddg())
@settings(max_examples=40, deadline=None)
def test_contraction_does_not_mutate_input(data):
    ddg, mli_keys = data
    nodes_before = set(ddg.node_keys())
    edges_before = set(ddg.edges())
    contract_ddg(ddg, mli_keys)
    assert set(ddg.node_keys()) == nodes_before
    assert set(ddg.edges()) == edges_before


@st.composite
def dense_register_web(draw):
    """A large web of temporary registers all feeding every MLI vertex, with
    a chained non-MLI ancestry — the shape real traces produce for register
    soups inside hot loops.  The old expansion-loop contraction re-copied
    parent sets on every substitution here and blew hypothesis's deadline at
    a few thousand registers; the reverse-BFS contraction stays linear in
    the edge count."""
    n_mli = draw(st.integers(min_value=2, max_value=8))
    n_other = draw(st.integers(min_value=1_000, max_value=4_000))
    fan = draw(st.integers(min_value=1, max_value=3))
    ddg = DDG()
    mli_keys = [f"v{i}" for i in range(n_mli)]
    other_keys = [f"t{i}" for i in range(n_other)]
    for key in mli_keys:
        ddg.add_node(key, NodeKind.MLI, key)
    for key in other_keys:
        ddg.add_node(key, NodeKind.REGISTER, key)
    for i in range(n_other):
        for mli in mli_keys:
            ddg.add_edge(other_keys[i], mli)
        for j in range(i + 1, min(i + 1 + fan, n_other)):
            ddg.add_edge(other_keys[j], other_keys[i])
        # every register chain bottoms out in some MLI variable, so the
        # contracted graph is the complete MLI digraph (minus self loops)
        ddg.add_edge(mli_keys[i % n_mli], other_keys[i])
    return ddg, set(mli_keys)


@given(dense_register_web())
@settings(max_examples=5, deadline=2_000)
def test_contraction_sound_on_dense_register_webs(data):
    """Previously timed out: the per-parent remove/re-add expansion loop was
    4-8x slower with heavy set-copy churn on graphs of this size; the BFS
    formulation completes well inside the deadline."""
    ddg, mli_keys = data
    contracted = contract_ddg(ddg, mli_keys)
    assert set(contracted.node_keys()) <= mli_keys
    assert contraction_is_sound(ddg, contracted, mli_keys)
    # every MLI vertex keeps its full non-MLI ancestry compressed away:
    # each is parented by every *other* MLI vertex reachable through the web
    for child in mli_keys:
        assert contracted.parents_of(child) == mli_keys - {child}


# --------------------------------------------------------------------------- #
# RNG / formatting
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=1,
                                                              max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_rng_bounds_and_reproducibility(seed, bound):
    first = DeterministicRNG(seed)
    second = DeterministicRNG(seed)
    values_first = [first.next_int(bound) for _ in range(20)]
    values_second = [second.next_int(bound) for _ in range(20)]
    assert values_first == values_second
    assert all(0 <= value < bound for value in values_first)


@given(st.integers(min_value=0, max_value=2**50))
@settings(max_examples=60, deadline=None)
def test_format_bytes_always_parseable(value):
    text = format_bytes(value)
    number, unit = text.split()
    assert float(number) >= 0
    assert unit in {"B", "KB", "MB", "GB", "TB"}
