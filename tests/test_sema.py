"""Unit tests for mini-C semantic analysis."""

import pytest

from repro.minicc import ast_nodes as ast
from repro.minicc.errors import ParseError, SemanticError
from repro.minicc.parser import parse_program
from repro.minicc.sema import BUILTIN_FUNCTIONS, analyze


def analyze_source(source: str):
    program = parse_program(source)
    return program, analyze(program)


def analyze_main(body: str):
    return analyze_source("int main() {\n" + body + "\nreturn 0;\n}")


class TestProgramStructure:
    def test_missing_main_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source("void foo() {}")

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source("void f() {}\nvoid f() {}\nint main() { return 0; }")

    def test_builtin_redefinition_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source("double sqrt(double x) { return x; }\n"
                           "int main() { return 0; }")

    def test_function_signatures_recorded(self):
        _, info = analyze_source(
            "double scale(double v, int k) { return v * k; }\n"
            "int main() { double r = scale(2.0, 3); return 0; }")
        signature = info.functions["scale"]
        assert isinstance(signature.return_type, ast.DoubleType)
        assert len(signature.param_types) == 2

    def test_global_types_recorded(self):
        _, info = analyze_source("double u[8];\nint n;\nint main() { return 0; }")
        assert isinstance(info.global_types["u"], ast.ArrayType)
        assert isinstance(info.global_types["n"], ast.IntType)

    def test_forward_reference_allowed(self):
        analyze_source("int main() { helper(); return 0; }\nvoid helper() {}")


class TestDeclarationsAndScopes:
    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            analyze_main("x = 3;")

    def test_redeclaration_in_same_scope(self):
        with pytest.raises(SemanticError):
            analyze_main("int x; int x;")

    def test_shadowing_in_nested_scope_allowed(self):
        analyze_main("int x; { int x; x = 1; }")

    def test_for_loop_variable_scoped_to_loop(self):
        with pytest.raises(SemanticError):
            analyze_main("for (int i = 0; i < 3; ++i) { } i = 5;")

    def test_global_visible_in_function(self):
        analyze_source("int total;\nint main() { total = 3; return 0; }")

    def test_array_local_with_initializer_rejected(self):
        with pytest.raises(SemanticError):
            analyze_main("int a[3] = 5;")

    def test_global_array_with_initializer_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source("int a[3] = 5;\nint main() { return 0; }")

    def test_global_requires_constant_initializer(self):
        with pytest.raises(SemanticError):
            analyze_source("int a = b;\nint main() { return 0; }")

    def test_negative_constant_global(self):
        analyze_source("double offset = -2.5;\nint main() { return 0; }")

    def test_void_variable_rejected(self):
        with pytest.raises(ParseError):
            analyze_source("void x;\nint main() { return 0; }")


class TestTypesAndExpressions:
    def test_expression_types_annotated(self):
        program, _ = analyze_main("int a = 2; double b = 1.5; double c = a + b;")
        main = program.function("main")
        decl_c = main.body.statements[2].decls[0]
        assert isinstance(decl_c.init.ctype, ast.DoubleType)

    def test_int_only_modulo(self):
        with pytest.raises(SemanticError):
            analyze_main("double x = 3.0; int y = 4 % x;")

    def test_comparison_yields_int(self):
        program, _ = analyze_main("double a = 1.0; int c = a < 2.0;")
        decl = program.function("main").body.statements[1].decls[0]
        assert isinstance(decl.init.ctype, ast.IntType)

    def test_array_subscript_count_checked(self):
        with pytest.raises(SemanticError):
            analyze_main("double u[4][4]; u[1] = 3.0;")

    def test_indexing_non_array_rejected(self):
        with pytest.raises(SemanticError):
            analyze_main("int x; x[0] = 1;")

    def test_assigning_whole_array_rejected(self):
        with pytest.raises(SemanticError):
            analyze_main("int a[3]; int b[3]; a = b;")

    def test_pointer_param_indexing(self):
        analyze_source(
            "void fill(double *v, int n) { for (int i = 0; i < n; ++i) { v[i] = 0.0; } }\n"
            "int main() { double buf[5]; fill(buf, 5); return 0; }")

    def test_multidim_pointer_param_indexing(self):
        analyze_source(
            "void touch(double u[4][4]) { u[1][2] = 3.0; }\n"
            "int main() { double grid[4][4]; touch(grid); return 0; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError):
            analyze_main("break;")

    def test_continue_inside_loop_ok(self):
        analyze_main("for (int i = 0; i < 3; ++i) { continue; }")


class TestCallsAndReturns:
    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            analyze_main("mystery(3);")

    def test_wrong_arity_user_function(self):
        with pytest.raises(SemanticError):
            analyze_source("void f(int a) {}\nint main() { f(); return 0; }")

    def test_wrong_arity_builtin(self):
        with pytest.raises(SemanticError):
            analyze_main("double x = pow(2.0);")

    def test_pointer_argument_must_be_array(self):
        with pytest.raises(SemanticError):
            analyze_source("void f(int *p) {}\nint main() { f(3); return 0; }")

    def test_void_function_cannot_return_value(self):
        with pytest.raises(SemanticError):
            analyze_source("void f() { return 3; }\nint main() { return 0; }")

    def test_value_function_must_return_value(self):
        with pytest.raises(SemanticError):
            analyze_source("int f() { return; }\nint main() { return 0; }")

    def test_builtin_table_well_formed(self):
        for name, (params, ret) in BUILTIN_FUNCTIONS.items():
            assert isinstance(name, str)
            assert ret.is_numeric()
            if params is not None:
                for param in params:
                    assert param.is_numeric()

    def test_example_program_analyzes(self, example_source):
        program = parse_program(example_source)
        info = analyze(program)
        assert set(info.functions) == {"foo", "main"}
