"""Black-box concurrency suite for the serve daemon.

Every test here talks to a real :class:`AnalysisServer` bound to an
ephemeral port through :class:`ServeClient` — plain HTTP in, bytes out.
The load-bearing assertions:

* **warm = direct** — a warm request's body is byte-identical to the
  canonical serialization of a direct in-process ``AutoCheck.run``;
* **coalescing** — N concurrent identical cold requests perform exactly
  one engine walk (the ``decode_counter`` fixture counts every decoded
  trace record) and all N bodies match a cold serial run's bytes;
* **backpressure** — a full worker queue answers 429 with a named error
  code instead of queueing unboundedly;
* **failure propagation** — an analysis crash reaches every coalesced
  waiter as a structured 500;
* **graceful shutdown** — ``close(graceful=True)`` drains in-flight jobs
  and publishes their artifacts before returning;
* **fleet stress** — seeded randomized interleavings over every bundled
  app leave the store consistent and every response equal to a cold
  serial reference run.
"""

from __future__ import annotations

import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import (
    JOB_DONE,
    AnalysisServer,
    ServeClient,
)
from repro.serve.server import run_analysis
from repro.store import ArtifactStore
from repro.store.batch import prepare_app_analysis
from repro.store.serialize import canonical_report_json
from repro.tracer.driver import trace_to_file

from test_store import ALL_APP_NAMES

#: Apps cheap enough to analyse repeatedly inside a unit test.
FAST_APP = "example"


# --------------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------------- #
def _make_server(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("trace_dir", str(tmp_path / "traces"))
    return AnalysisServer(port=0, **kwargs).start()


@pytest.fixture()
def server(tmp_path):
    """A daemon on an ephemeral port with a fresh cache; always closed."""
    srv = _make_server(tmp_path, workers=2, queue_limit=8)
    yield srv
    srv.close(graceful=True, timeout=60.0)


@pytest.fixture()
def client(server):
    return ServeClient(server.host, server.port)


def _direct_canonical(app_name, trace_dir, **kwargs):
    """Canonical bytes of a direct, cache-free in-process run."""
    prepared = prepare_app_analysis(
        app_name, use_cache=False, trace_dir=trace_dir, **kwargs)
    return canonical_report_json(prepared.autocheck.run()).encode()


def _poll(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# --------------------------------------------------------------------------- #
# Endpoint surface: status codes, named error codes, stats shape
# --------------------------------------------------------------------------- #
class TestEndpoints:
    def test_healthz(self, client):
        status, _, body = client.healthz()
        assert status == 200
        assert json.loads(body)["ok"] is True

    def test_stats_shape(self, client):
        snap = client.stats()
        assert {"endpoints", "cache", "coalesce", "jobs", "store"} <= set(snap)

    def test_malformed_json_is_structured_400(self, client):
        status, _, body = client.request(
            "POST", "/analyze", b"{not json", content_type="application/json")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "BAD_JSON"

    def test_missing_app_field_is_400(self, client):
        status, _, body = client.request(
            "POST", "/analyze", b"{}", content_type="application/json")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "MISSING_FIELD"

    def test_unknown_app_is_404(self, client):
        status, _, body = client.analyze_app("no-such-app")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "UNKNOWN_APP"

    def test_unknown_job_is_404(self, client):
        status, _, body = client.job("j999999")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "JOB_NOT_FOUND"

    def test_unknown_report_is_404(self, client):
        status, _, body = client.report("0" * 64)
        assert status == 404
        assert json.loads(body)["error"]["code"] == "REPORT_NOT_FOUND"

    def test_unknown_path_is_404(self, client):
        status, _, body = client.request("GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "NOT_FOUND"

    def test_wrong_method_is_405(self, client):
        status, _, body = client.request("POST", "/healthz", b"")
        assert status == 405
        assert json.loads(body)["error"]["code"] == "METHOD_NOT_ALLOWED"

    def test_trace_upload_requires_loop_bounds(self, client):
        status, _, body = client.request(
            "POST", "/analyze", b"\x00\x01",
            content_type="application/octet-stream")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "MISSING_FIELD"


# --------------------------------------------------------------------------- #
# Warm path: store-backed responses are byte-identical to direct runs
# --------------------------------------------------------------------------- #
class TestWarmPath:
    def test_warm_request_matches_direct_run_bytes(self, server, client):
        expected = _direct_canonical(FAST_APP, server.trace_dir)

        cold_status, cold_headers, cold_body = client.analyze_app(FAST_APP)
        warm_status, warm_headers, warm_body = client.analyze_app(FAST_APP)

        assert cold_status == warm_status == 200
        assert cold_headers["x-autocheck-cache"] == "miss"
        assert warm_headers["x-autocheck-cache"] == "hit"
        assert cold_body == expected
        assert warm_body == expected

    def test_report_endpoint_serves_stored_bytes(self, server, client):
        _, headers, body = client.analyze_app(FAST_APP)
        key = headers["x-autocheck-key"]
        status, report_headers, report_body = client.report(key)
        assert status == 200
        assert report_headers["x-autocheck-key"] == key
        assert report_body == body

    def test_async_job_lifecycle_and_progress_stream(self, server, client):
        status, headers, body = client.analyze_app(FAST_APP, wait=False)
        assert status == 202
        handle = json.loads(body)
        assert handle["key"] == headers["x-autocheck-key"]
        job_id = handle["job"]

        snapshots = list(client.stream_job(job_id))
        assert snapshots, "stream must emit at least the final snapshot"
        assert snapshots[-1]["state"] == JOB_DONE
        records = [s["progress"]["records"] for s in snapshots]
        assert records == sorted(records), "progress must be monotonic"
        assert records[-1] > 0

        status, _, body = client.job(job_id)
        assert status == 200
        assert json.loads(body)["state"] == JOB_DONE

        # The async run published the artifact: the next request is warm.
        _, warm_headers, _ = client.analyze_app(FAST_APP)
        assert warm_headers["x-autocheck-cache"] == "hit"


# --------------------------------------------------------------------------- #
# Coalescing: N identical concurrent cold requests, one engine walk
# --------------------------------------------------------------------------- #
class TestCoalescing:
    N = 8

    def test_concurrent_cold_requests_share_one_engine_walk(
            self, tmp_path, decode_counter):
        # Reference: one cold serial run, counting its decode cost.
        trace_dir = str(tmp_path / "traces")
        expected_body = _direct_canonical(FAST_APP, trace_dir)
        walk_cost = decode_counter["records"]
        assert walk_cost > 0
        decode_counter["records"] = 0

        # Hold the analysis until every request has joined the flight, so
        # the test is deterministic rather than a lucky interleaving.
        release = threading.Event()

        def gated(work, job):
            assert release.wait(timeout=60.0)
            return run_analysis(work, job)

        srv = _make_server(tmp_path, workers=2, queue_limit=8,
                           analyzer=gated)
        try:
            cli = ServeClient(srv.host, srv.port)
            with ThreadPoolExecutor(max_workers=self.N) as pool:
                futures = [pool.submit(cli.analyze_app, FAST_APP)
                           for _ in range(self.N)]
                stats = srv.coalescer.stats
                assert _poll(lambda: stats()["led"] + stats()["joined"]
                             >= self.N)
                release.set()
                responses = [f.result(timeout=120) for f in futures]

            statuses = [r[0] for r in responses]
            bodies = {r[2] for r in responses}
            coalesced = sorted(r[1]["x-autocheck-coalesced"]
                               for r in responses)

            assert statuses == [200] * self.N
            assert bodies == {expected_body}
            assert coalesced == ["joined"] * (self.N - 1) + ["led"]
            # The acceptance bar: exactly one trace-record decode pass
            # across all eight requests.
            assert decode_counter["records"] == walk_cost
            jobs = srv.jobs.stats()
            assert jobs["submitted"] == jobs["completed"] == 1
        finally:
            srv.close(graceful=True, timeout=60.0)

    def test_sequential_requests_do_not_coalesce(self, server, client):
        client.analyze_app(FAST_APP)
        client.analyze_app(FAST_APP)
        stats = server.coalescer.stats()
        assert stats["joined"] == 0
        assert stats["in_flight"] == 0

    def test_failure_propagates_to_every_coalesced_waiter(self, tmp_path):
        release = threading.Event()

        def exploding(work, job):
            assert release.wait(timeout=60.0)
            raise RuntimeError("engine exploded")

        srv = _make_server(tmp_path, workers=1, queue_limit=4,
                           analyzer=exploding)
        try:
            cli = ServeClient(srv.host, srv.port)
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(cli.analyze_app, FAST_APP)
                           for _ in range(4)]
                stats = srv.coalescer.stats
                assert _poll(lambda: stats()["led"] + stats()["joined"] >= 4)
                release.set()
                responses = [f.result(timeout=60) for f in futures]

            for status, _, body in responses:
                assert status == 500
                error = json.loads(body)["error"]
                assert error["code"] == "ANALYSIS_FAILED"
                assert "engine exploded" in error["message"]
        finally:
            srv.close(graceful=True, timeout=60.0)


# --------------------------------------------------------------------------- #
# Backpressure and shutdown
# --------------------------------------------------------------------------- #
class TestBackpressureAndShutdown:
    def test_queue_full_returns_429(self, tmp_path):
        release = threading.Event()

        def gated(work, job):
            assert release.wait(timeout=60.0)
            return run_analysis(work, job)

        # One worker, one queue slot: the third distinct key must shed.
        srv = _make_server(tmp_path, workers=1, queue_limit=1,
                           analyzer=gated)
        try:
            cli = ServeClient(srv.host, srv.port)
            status1, _, body1 = cli.analyze_app("example", wait=False)
            assert status1 == 202
            job1 = json.loads(body1)["job"]
            # Wait until the worker has dequeued job 1 (it is now pinned
            # on the gate) so the single queue slot is free for job 2.
            assert _poll(lambda: json.loads(cli.job(job1)[2])["state"]
                         == "running")

            status2, _, _ = cli.analyze_app("cg", wait=False)
            assert status2 == 202

            status3, _, body3 = cli.analyze_app("mg", wait=False)
            assert status3 == 429
            assert json.loads(body3)["error"]["code"] == "QUEUE_FULL"
            assert srv.jobs.stats()["rejected"] == 1

            # Backpressure is transient: after draining, the shed key runs.
            release.set()
            assert _poll(lambda: srv.jobs.stats()["completed"] == 2,
                         timeout=120.0)
            status4, _, _ = cli.analyze_app("mg")
            assert status4 == 200
        finally:
            release.set()
            srv.close(graceful=True, timeout=120.0)

    def test_graceful_shutdown_drains_in_flight_job(self, tmp_path):
        release = threading.Event()

        def gated(work, job):
            assert release.wait(timeout=60.0)
            return run_analysis(work, job)

        srv = _make_server(tmp_path, workers=1, queue_limit=4,
                           analyzer=gated)
        cli = ServeClient(srv.host, srv.port)
        status, headers, body = cli.analyze_app(FAST_APP, wait=False)
        assert status == 202
        job_id = json.loads(body)["job"]
        key = headers["x-autocheck-key"]

        closer = threading.Thread(
            target=srv.close, kwargs={"graceful": True, "timeout": 120.0})
        closer.start()
        try:
            release.set()
            closer.join(timeout=120.0)
            assert not closer.is_alive(), "close() must return after drain"
        finally:
            release.set()
            closer.join(timeout=120.0)

        job = srv.jobs.get(job_id)
        assert job is not None and job.state == JOB_DONE
        # The drained job published its artifact before the store went dark.
        assert ArtifactStore(srv.cache_dir).load(key) is not None


# --------------------------------------------------------------------------- #
# Fleet stress: seeded randomized interleavings over every bundled app
# --------------------------------------------------------------------------- #
class TestFleetStress:
    SEED = 20240808
    THREADS = 8
    REQUESTS_PER_APP = 3

    def test_randomized_fleet_hammer_keeps_store_consistent(self, tmp_path):
        trace_dir = str(tmp_path / "traces")

        # Cold serial reference bytes for every app, before the daemon
        # ever runs: the ground truth the concurrent runs must match.
        expected = {name: _direct_canonical(name, trace_dir)
                    for name in ALL_APP_NAMES}

        srv = _make_server(tmp_path, workers=4, queue_limit=64)
        try:
            cli = ServeClient(srv.host, srv.port)
            rng = random.Random(self.SEED)
            schedule = ALL_APP_NAMES * self.REQUESTS_PER_APP
            rng.shuffle(schedule)

            with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
                results = list(pool.map(cli.analyze_app, schedule))

            for app_name, (status, headers, body) in zip(schedule, results):
                assert status == 200, (app_name, status, body)
                assert body == expected[app_name], app_name
                assert headers["x-autocheck-cache"] in ("miss", "hit")

            # Store integrity: one entry per app, every one strict-loads.
            store = srv.store
            assert store.stats().entries == len(ALL_APP_NAMES)
            for _, headers, _ in results:
                key = headers["x-autocheck-key"]
                store.load_entry(store.entry_path(key), key)  # raises if bad

            snap = srv.stats_snapshot()
            cache = snap["cache"]
            assert cache["hits"] + cache["misses"] == len(schedule)
            jobs = snap["jobs"]
            assert jobs["failed"] == 0
            assert jobs["submitted"] == jobs["completed"]
            # Each app's artifact was computed at least once and at most
            # once per non-coalesced miss.
            assert len(ALL_APP_NAMES) <= jobs["completed"] <= len(schedule)
        finally:
            srv.close(graceful=True, timeout=120.0)


# --------------------------------------------------------------------------- #
# Binary trace upload path
# --------------------------------------------------------------------------- #
class TestTraceUpload:
    def test_upload_miss_then_hit_byte_identical(self, tmp_path, server,
                                                 client, example_source):
        from repro.codegen.lowering import compile_source

        module = compile_source(example_source, module_name="example")
        trace_path = str(tmp_path / "upload.btrace")
        trace_to_file(module, trace_path, module_name="example",
                      fmt="binary")
        with open(trace_path, "rb") as handle:
            payload = handle.read()

        prepared = prepare_app_analysis("example", use_cache=False,
                                        trace_dir=server.trace_dir)
        spec = prepared.spec
        cold = client.analyze_trace(payload, spec.function,
                                    spec.start_line, spec.end_line)
        warm = client.analyze_trace(payload, spec.function,
                                    spec.start_line, spec.end_line)
        assert cold[0] == warm[0] == 200
        assert cold[1]["x-autocheck-cache"] == "miss"
        assert warm[1]["x-autocheck-cache"] == "hit"
        assert cold[2] == warm[2]
