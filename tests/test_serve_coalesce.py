"""Property tests for the serve daemon's request-coalescing layer.

No HTTP here: :class:`RequestCoalescer` is exercised in isolation, first
under hypothesis-generated submit/complete/fail schedules checked against
a reference model, then under seeded multithreaded load.  The three
documented invariants pinned down:

* **no lost waiters** — every join is resolved by exactly one
  complete/fail and every waiter observes that resolution;
* **single flight per key** — two leaders for one key never coexist, so
  the guarded computation never runs twice concurrently for a key;
* **failure propagation** — a leader's exception reaches every coalesced
  waiter as the *same* exception instance.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import CoalesceTimeout, RequestCoalescer

KEYS = ("alpha", "beta", "gamma")

#: A schedule step: (op, key).  ``join`` opens-or-joins the key's flight;
#: ``complete``/``fail`` resolve the key's open flight (no-ops when the
#: key has none — hypothesis is free to generate those and the coalescer
#: surface simply has nothing to call).
ops = st.lists(
    st.tuples(st.sampled_from(["join", "complete", "fail"]),
              st.sampled_from(KEYS)),
    max_size=60)


class ScheduleError(RuntimeError):
    """Marker error injected by fail steps."""


# --------------------------------------------------------------------------- #
# Model-checked schedules
# --------------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(schedule=ops)
def test_arbitrary_schedules_obey_the_coalescing_invariants(schedule):
    """Replay a schedule against a reference model of the flight table.

    The model is the documented contract: one open flight per key, joins
    while open are followers, resolution wakes every waiter with the
    leader's result/error, and later joins open a fresh flight.
    """
    coalescer = RequestCoalescer()
    open_flights = {}    # key -> its one open Flight
    waiter_counts = {}   # key -> joins observed on that flight
    expected_led = 0
    expected_joined = 0
    token = 0

    for op, key in schedule:
        if op == "join":
            flight, leader = coalescer.join(key)
            if key in open_flights:
                # Single flight per key: joining an open key must land on
                # the existing flight as a follower.
                assert not leader
                assert flight is open_flights[key]
                waiter_counts[key] += 1
                expected_joined += 1
            else:
                assert leader
                assert not flight.done
                open_flights[key] = flight
                waiter_counts[key] = 1
                expected_led += 1
            assert flight.waiters == waiter_counts[key]
        elif key in open_flights:
            flight = open_flights.pop(key)
            waiters_before = waiter_counts.pop(key)
            if op == "complete":
                token += 1
                coalescer.complete(flight, token)
                # Every waiter wakes with the leader's result.
                for _ in range(waiters_before):
                    assert flight.wait(timeout=0) == token
            else:
                error = ScheduleError(key)
                coalescer.fail(flight, error)
                # The same exception instance reaches every waiter.
                for _ in range(waiters_before):
                    with pytest.raises(ScheduleError) as excinfo:
                        flight.wait(timeout=0)
                    assert excinfo.value is error
            # The table entry is gone: the next join leads a fresh flight.
            fresh, fresh_leader = coalescer.join(key)
            assert fresh_leader and fresh is not flight
            coalescer.complete(fresh, None)
            expected_led += 1

    stats = coalescer.stats()
    assert stats["led"] == expected_led
    assert stats["joined"] == expected_joined
    # No lost waiters at the end: only deliberately unresolved flights
    # remain in the table.
    assert stats["in_flight"] == len(open_flights)
    for flight in open_flights.values():
        assert not flight.done
        with pytest.raises(CoalesceTimeout):
            flight.wait(timeout=0)


# --------------------------------------------------------------------------- #
# Seeded multithreaded load
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [1, 20240808])
def test_threaded_load_never_runs_a_key_twice_concurrently(seed):
    """Hammer ``run`` from many threads; the guarded fn is never
    concurrently entered for the same key, and every caller gets the
    result computed by the flight it coalesced onto."""
    coalescer = RequestCoalescer()
    rng = random.Random(seed)
    guard_lock = threading.Lock()
    running = set()
    executions = {key: 0 for key in KEYS}
    violations = []

    def compute(key, delay):
        with guard_lock:
            if key in running:
                violations.append(key)
            running.add(key)
            executions[key] += 1
            serial = executions[key]
        threading.Event().wait(delay)
        with guard_lock:
            running.discard(key)
        return (key, serial)

    calls = [(rng.choice(KEYS), rng.uniform(0.0, 0.005)) for _ in range(120)]

    def one_call(args):
        key, delay = args
        result, led = coalescer.run(key, lambda: compute(key, delay))
        return key, result, led

    with ThreadPoolExecutor(max_workers=12) as pool:
        results = list(pool.map(one_call, calls))

    assert violations == []
    for key, result, _ in results:
        # Whatever flight a caller landed on computed *that* key.
        assert result[0] == key
    # Coalescing actually saved work under load, and the ledger balances:
    # every call either led or joined.
    stats = coalescer.stats()
    assert stats["led"] + stats["joined"] == len(calls)
    assert stats["led"] == sum(executions.values())
    assert stats["in_flight"] == 0


def test_threaded_failures_propagate_to_all_waiters():
    coalescer = RequestCoalescer()
    barrier = threading.Barrier(6)
    errors = []
    errors_lock = threading.Lock()

    def explode():
        # Give followers time to pile onto the flight before failing.
        threading.Event().wait(0.02)
        raise ScheduleError("kaboom")

    def one_call(_):
        barrier.wait(timeout=10)
        try:
            coalescer.run("key", explode, timeout=10)
        except ScheduleError as exc:
            with errors_lock:
                errors.append(exc)
            return "failed"
        return "succeeded"

    with ThreadPoolExecutor(max_workers=6) as pool:
        outcomes = list(pool.map(one_call, range(6)))

    # Every caller failed — whether it led a flight or coalesced onto one
    # — and coalesced callers saw their leader's exact exception instance.
    assert outcomes == ["failed"] * 6
    assert len(errors) == 6
    assert len({id(e) for e in errors}) == coalescer.stats()["led"]
    assert coalescer.stats()["in_flight"] == 0


# --------------------------------------------------------------------------- #
# Flight metadata plumbing
# --------------------------------------------------------------------------- #
class TestFlightMeta:
    def test_meta_blocks_until_published(self):
        coalescer = RequestCoalescer()
        flight, leader = coalescer.join("k")
        assert leader
        with pytest.raises(CoalesceTimeout):
            flight.meta(timeout=0)
        flight.publish_meta(job_id="j000001")
        assert flight.meta(timeout=0) == {"job_id": "j000001"}

    def test_resolution_unblocks_meta_readers(self):
        # A leader that fails before publishing must not strand followers
        # blocked on meta().
        coalescer = RequestCoalescer()
        flight, _ = coalescer.join("k")
        coalescer.fail(flight, ScheduleError("early"))
        assert flight.meta(timeout=0) == {}
