"""Tests for the static-vs-dynamic cross-check oracle.

Covers the clean path on the worked example, seeded faults (a synthetic
bogus DDG edge, a reference to a register the IR never defines, an MLI
variable outside the static candidate set) each yielding a *named*
diagnostic with structured context, and the fleet-wide invariants:
every bundled app passes the oracle and satisfies
``dynamic MLI ⊆ static candidates``.
"""

from __future__ import annotations

import dataclasses
import itertools

import pytest

from repro.apps import get_app
from repro.apps.registry import app_names
from repro.core.ddg import NodeKind
from repro.experiments.common import analyze_app
from repro.static.check import (
    INFEASIBLE_DDG_EDGE,
    MLI_NOT_STATIC_CANDIDATE,
    UNKNOWN_REGISTER,
    StaticCheckError,
    cross_check,
    require_clean,
)
from repro.static.summary import analyze_module


@pytest.fixture(scope="module")
def example_static(example_module, example_spec):
    return analyze_module(example_module, spec=example_spec)


class TestOracleCleanPath:
    def test_example_oracle_is_clean(self, example_module, example_spec,
                                     example_report, example_static):
        diagnostics = cross_check(example_module, example_spec,
                                  example_report, analysis=example_static)
        assert diagnostics == []

    def test_require_clean_passes_silently(self, example_module, example_spec,
                                           example_report, example_static):
        require_clean(example_module, example_spec, example_report,
                      analysis=example_static)

    def test_dynamic_mli_is_subset_of_candidates(self, example_report,
                                                 example_static):
        assert (set(example_report.mli_variable_names)
                <= set(example_static.candidate_names))


class TestSeededFaults:
    def _infeasible_var_pair(self, report, static):
        """A (parent, child) var-node pair with no static dependence path —
        the edge a broken dynamic walk could invent."""
        ddg = report.complete_ddg
        var_keys = [key for key in ddg.node_keys()
                    if ddg.node(key).kind is not NodeKind.REGISTER]
        for parent, child in itertools.permutations(var_keys, 2):
            parent_ids = static.static_ddg.ids_for_name(
                parent.rsplit("@", 1)[0])
            child_ids = static.static_ddg.ids_for_name(
                child.rsplit("@", 1)[0])
            if not parent_ids or not child_ids:
                continue
            feasible = any(
                static.static_ddg.may_depend(child_id, parent_id)
                for child_id in child_ids for parent_id in parent_ids)
            if not feasible:
                return parent, child
        pytest.fail("example DDG has no statically-independent var pair")

    def test_bogus_ddg_edge_yields_named_diagnostic(
            self, example_module, example_spec, example_report,
            example_static):
        parent, child = self._infeasible_var_pair(example_report,
                                                  example_static)
        seeded_ddg = example_report.complete_ddg.copy()
        seeded_ddg.add_edge(parent, child)
        seeded = dataclasses.replace(example_report,
                                     complete_ddg=seeded_ddg)
        diagnostics = cross_check(example_module, example_spec, seeded,
                                  analysis=example_static)
        assert any(d.code == INFEASIBLE_DDG_EDGE for d in diagnostics)
        offending = next(d for d in diagnostics
                         if d.code == INFEASIBLE_DDG_EDGE)
        assert offending.edge == (parent, child)
        assert INFEASIBLE_DDG_EDGE in str(offending)

    def test_unknown_register_yields_named_diagnostic(
            self, example_module, example_spec, example_report,
            example_static):
        seeded_ddg = example_report.complete_ddg.copy()
        var_key = next(key for key in seeded_ddg.node_keys()
                       if seeded_ddg.node(key).kind is not NodeKind.REGISTER)
        seeded_ddg.add_node("main%99999", NodeKind.REGISTER)
        seeded_ddg.add_edge(var_key, "main%99999")
        seeded = dataclasses.replace(example_report,
                                     complete_ddg=seeded_ddg)
        diagnostics = cross_check(example_module, example_spec, seeded,
                                  analysis=example_static)
        offending = [d for d in diagnostics if d.code == UNKNOWN_REGISTER]
        assert offending
        assert offending[0].function == "main"

    def test_foreign_mli_variable_yields_named_diagnostic(
            self, example_module, example_spec, example_report,
            example_static):
        seeded = dataclasses.replace(
            example_report,
            mli_variable_names=(example_report.mli_variable_names
                                + ["zz_not_a_variable"]))
        diagnostics = cross_check(example_module, example_spec, seeded,
                                  analysis=example_static)
        offending = [d for d in diagnostics
                     if d.code == MLI_NOT_STATIC_CANDIDATE]
        assert offending
        assert "zz_not_a_variable" in offending[0].message

    def test_require_clean_raises_with_diagnostics(
            self, example_module, example_spec, example_report,
            example_static):
        seeded = dataclasses.replace(
            example_report,
            mli_variable_names=(example_report.mli_variable_names
                                + ["zz_not_a_variable"]))
        with pytest.raises(StaticCheckError) as excinfo:
            require_clean(example_module, example_spec, seeded,
                          analysis=example_static)
        error = excinfo.value
        assert error.diagnostics
        assert MLI_NOT_STATIC_CANDIDATE in str(error)


class TestFleetWideOracle:
    def test_every_bundled_app_passes_and_mli_is_subset(self):
        fleet = app_names(include_example=True) + ["bigarray"]
        for name in fleet:
            app = get_app(name)
            result = analyze_app(app)
            source = app.source()
            spec = app.main_loop(source)
            include = app.autocheck_options.get(
                "include_global_accesses_in_calls", False)
            static = analyze_module(
                result.module, spec=spec,
                include_global_accesses_in_calls=include)
            diagnostics = cross_check(result.module, spec, result.report,
                                      analysis=static)
            assert diagnostics == [], (
                f"{name}: {[str(d) for d in diagnostics]}")
            assert (set(result.report.mli_variable_names)
                    <= set(static.candidate_names)), (
                f"{name}: dynamic MLI escapes the static candidate set")
            assert not static.saw_top, (
                f"{name}: static analysis lost precision to TOP")
