"""Unit tests for the static dataflow primitives (def-use, points-to,
value sources, liveness)."""

from __future__ import annotations

import pytest

from repro.codegen.lowering import compile_source
from repro.ir.instructions import (
    AllocaInst,
    GEPInst,
    LoadInst,
    StoreInst,
)
from repro.static.dataflow import (
    TOP,
    PointerAnalysis,
    build_def_use,
    compute_liveness,
    compute_read_summaries,
    format_var_id,
    global_id,
    local_id,
    value_sources,
    var_id_name,
)
from repro.static.summary import _return_summaries, analyze_module

POINTER_SOURCE = """\
int total;

void sweep(double *src, double *dst) {
    for (int k = 0; k < 4; ++k) {
        dst[k] = src[k] * 2.0;
    }
}

int main() {
    double a[8];
    double b[8];
    double x = 0.0;
    for (int i = 0; i < 4; ++i) {
        a[i] = i * 1.0;
    }
    sweep(a, b);
    x = a[0] + b[0];
    total = 1;
    print("x", x);
    return 0;
}
"""


@pytest.fixture(scope="module")
def pointer_module():
    return compile_source(POINTER_SOURCE, module_name="pointer_source")


@pytest.fixture(scope="module")
def pointers(pointer_module):
    return PointerAnalysis(pointer_module)


class TestVarIds:
    def test_formatting(self):
        assert format_var_id(global_id("total")) == "@total"
        assert format_var_id(local_id("main", "x")) == "main:x"
        assert format_var_id(TOP) == "<top>"

    def test_names(self):
        assert var_id_name(global_id("total")) == "total"
        assert var_id_name(local_id("main", "x")) == "x"
        assert var_id_name(TOP) is None


class TestDefUse:
    def test_every_register_def_is_recorded(self, pointer_module):
        function = pointer_module.functions["main"]
        chains = build_def_use(function)
        for inst in function.instructions():
            if inst.result is not None:
                site = chains.defs[inst.result.rid]
                assert site.inst is inst
                assert site.block.instructions[site.index] is inst

    def test_uses_point_back_to_operand_positions(self, pointer_module):
        function = pointer_module.functions["main"]
        chains = build_def_use(function)
        for rid, uses in chains.uses.items():
            for use in uses:
                operand = use.inst.operands[use.operand_index]
                assert operand.rid == rid


class TestPointsTo:
    def test_call_site_binds_array_actuals_to_formals(self, pointers):
        bindings = pointers.param_pointees["sweep"]
        assert bindings["src"] == {local_id("main", "a")}
        assert bindings["dst"] == {local_id("main", "b")}

    def test_spilled_parameter_reload_resolves(self, pointers, pointer_module):
        """The frontend spills `src`/`dst` to allocas and reloads them;
        the cell sets must carry the pointee through the round trip, so
        no pointer operand inside `sweep` resolves to TOP."""
        sweep = pointer_module.functions["sweep"]
        resolved = set()
        for inst in sweep.instructions():
            if isinstance(inst, (LoadInst, GEPInst)):
                resolved |= pointers.resolve(inst.operands[0], sweep)
            elif isinstance(inst, StoreInst):
                resolved |= pointers.resolve(inst.operands[1], sweep)
        assert TOP not in resolved
        assert local_id("main", "a") in resolved
        assert local_id("main", "b") in resolved

    def test_cell_sets_record_the_spill(self, pointers):
        cells = pointers.state.cell_pointees
        assert local_id("main", "a") in cells.get(local_id("sweep", "src"),
                                                  set())
        assert local_id("main", "b") in cells.get(local_id("sweep", "dst"),
                                                  set())

    def test_global_resolves_to_itself(self, pointers, pointer_module):
        main = pointer_module.functions["main"]
        for inst in main.instructions():
            if isinstance(inst, StoreInst):
                targets = pointers.resolve(inst.operands[1], main)
                if global_id("total") in targets:
                    assert targets == {global_id("total")}
                    return
        pytest.fail("no store targeting the global was found")

    def test_unbound_parameter_resolves_empty(self):
        module = compile_source(
            """\
void helper(int *p) {
    p[0] = 1;
}

int main() {
    print("ok", 1);
    return 0;
}
""", module_name="unbound")
        pointers = PointerAnalysis(module)
        helper = module.functions["helper"]
        for inst in helper.instructions():
            if isinstance(inst, StoreInst):
                targets = pointers.resolve(inst.operands[1], helper)
                # Never-called code has no call-site pointees: empty, not TOP.
                assert TOP not in targets


class TestValueSources:
    def test_gep_carries_index_sources_not_base(self, pointers,
                                                pointer_module):
        """The dynamic dependency pass draws index -> GEP-result edges,
        never base -> result; the static mirror must match."""
        main = pointer_module.functions["main"]
        ret_summaries = _return_summaries(pointer_module, pointers)
        for inst in main.instructions():
            if isinstance(inst, GEPInst) and inst.result is not None:
                sources = value_sources(inst.result, main, pointers,
                                        ret_summaries)
                assert local_id("main", "a") not in sources
                assert local_id("main", "b") not in sources

    def test_load_contributes_the_loaded_variable(self, pointers,
                                                  pointer_module):
        main = pointer_module.functions["main"]
        ret_summaries = _return_summaries(pointer_module, pointers)
        seen = set()
        for inst in main.instructions():
            if isinstance(inst, LoadInst) and inst.result is not None:
                seen |= value_sources(inst.result, main, pointers,
                                      ret_summaries)
        assert local_id("main", "a") in seen
        assert TOP not in seen


class TestLiveness:
    def test_scalar_store_kills_array_store_does_not(self, pointer_module,
                                                     pointers):
        main = pointer_module.functions["main"]
        analysis = analyze_module(pointer_module)
        liveness = analysis.functions["main"].liveness
        kills = set()
        for flow in liveness.flow.values():
            kills |= flow.kill
        assert local_id("main", "x") in kills
        # Element writes never kill the whole array.
        assert local_id("main", "a") not in kills
        assert local_id("main", "b") not in kills

    def test_loop_carried_variable_is_live_into_its_loop(self,
                                                         pointer_module):
        analysis = analyze_module(pointer_module)
        summary = analysis.functions["main"]
        loops = summary.loop_info.loops
        assert loops, "main must contain at least one natural loop"
        live_at_headers = set()
        for loop in loops:
            live_at_headers |= summary.liveness.live_in[loop.header]
        assert local_id("main", "i") in live_at_headers

    def test_read_summaries_cover_callee_reads(self, pointer_module,
                                               pointers):
        reads = compute_read_summaries(pointer_module, pointers)
        assert local_id("main", "a") in reads["sweep"]
        # main transitively reads what sweep reads.
        assert reads["sweep"] <= reads["main"]
