"""Tests for the static engine prefilter.

The load-bearing invariant is **report equality**: a prefiltered run must
serialize to exactly the unfiltered report (minus timings and the
prefilter stats block) while skipping a positive number of records.
Beyond that, the fast dispatch plan (`make_skip_plan`) must agree with
the reference `should_skip` semantics record-for-record, and the engine
must take the same decisions through the fast path and the duck-typed
fallback path.
"""

from __future__ import annotations

import pytest

from repro.apps import get_app
from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig
from repro.core.errors import AnalysisError
from repro.core.engine import (
    REGION_AFTER,
    REGION_BEFORE,
    AnalysisEngine,
    AnalysisPass,
)
from repro.core.pipeline import AutoCheck
from repro.static.prefilter import (
    ALWAYS_SKIP_OPCODES,
    StaticPrefilter,
    build_prefilter,
)
from repro.static.summary import analyze_module
from repro.store.serialize import report_to_dict
from repro.tracer.driver import run_and_trace

APPS_UNDER_TEST = ["example", "bigarray", "hpccg"]


def _comparable(report) -> dict:
    data = report_to_dict(report)
    data.pop("timings", None)
    data.pop("prefilter", None)
    return data


def _app_setup(name):
    app = get_app(name)
    source = app.source()
    module = compile_source(source, module_name=name)
    spec = app.main_loop(source)
    trace, result = run_and_trace(module, module_name=name, seed=7)
    assert not result.failed
    options = dict(app.autocheck_options)
    return app, module, spec, trace, options


class TestReportEquality:
    @pytest.mark.parametrize("name", APPS_UNDER_TEST)
    def test_prefiltered_report_is_identical(self, name):
        _, module, spec, trace, options = _app_setup(name)
        plain = AutoCheck(AutoCheckConfig(main_loop=spec, **options),
                          trace=trace, module=module).run()
        filtered = AutoCheck(
            AutoCheckConfig(main_loop=spec, static_prefilter=True, **options),
            trace=trace, module=module).run()
        assert _comparable(plain) == _comparable(filtered)
        assert filtered.prefilter_info is not None
        assert filtered.prefilter_info.skipped_records > 0
        assert plain.prefilter_info is None

    def test_prefilter_info_lands_in_summary(self):
        _, module, spec, trace, options = _app_setup("example")
        filtered = AutoCheck(
            AutoCheckConfig(main_loop=spec, static_prefilter=True, **options),
            trace=trace, module=module).run()
        assert "prefilter" in filtered.summary().lower()


class TestSkipPlanSemantics:
    def test_plan_agrees_with_should_skip_on_real_records(self):
        """Fast plan == reference semantics, record for record, over every
        outside region."""
        _, module, spec, trace, options = _app_setup("example")
        analysis = analyze_module(module, spec=spec)
        prefilter = build_prefilter(analysis)
        always, memory_skip = prefilter.make_skip_plan()
        assert always == ALWAYS_SKIP_OPCODES
        for record in trace.records:
            for region in (REGION_BEFORE, REGION_AFTER):
                reference = prefilter.should_skip(record, region)
                if record.opcode in always:
                    fast = True
                else:
                    fast = memory_skip(record, region)
                assert fast == reference, (
                    f"plan diverges on #{record.dyn_id} "
                    f"({record.opcode_name}) in region {region}")

    def test_non_memory_opcodes_always_skip(self):
        _, module, spec, trace, options = _app_setup("example")
        prefilter = build_prefilter(analyze_module(module, spec=spec))
        for record in trace.records:
            if record.opcode in ALWAYS_SKIP_OPCODES:
                assert prefilter.should_skip(record, REGION_BEFORE)

    def test_build_prefilter_requires_spec(self, example_module):
        analysis = analyze_module(example_module)  # no spec
        with pytest.raises(ValueError, match="spec"):
            build_prefilter(analysis)

    def test_fingerprint_matches_analysis(self, example_module, example_spec):
        analysis = analyze_module(example_module, spec=example_spec)
        prefilter = build_prefilter(analysis)
        assert prefilter.fingerprint == analysis.fingerprint()

    def test_candidate_bearing_names_never_enter_skip_tables(
            self, example_module, example_spec):
        analysis = analyze_module(example_module, spec=example_spec)
        prefilter = build_prefilter(analysis)
        candidate_names = analysis.candidate_names
        for names in prefilter.skip_names.values():
            assert not (names & candidate_names)


class _CountingPass(AnalysisPass):
    """Subscribes to every record kind and counts dispatches."""

    def __init__(self):
        self.dispatched = 0

    def _count(self, record, region):
        self.dispatched += 1

    on_alloca = on_load = on_store = on_gep = _count
    on_forwarding = on_arithmetic = on_call = on_ret = on_other = _count


class _ShouldSkipOnly:
    """A duck-typed filter without `make_skip_plan` — exercises the
    engine's fallback path."""

    def __init__(self, prefilter: StaticPrefilter):
        self.should_skip = prefilter.should_skip
        self.fingerprint = prefilter.fingerprint


class TestEngineDispatch:
    def test_fast_and_fallback_paths_agree(self):
        _, module, spec, trace, options = _app_setup("example")
        analysis = analyze_module(module, spec=spec)
        prefilter = build_prefilter(analysis)

        def drive(filter_object):
            counting = _CountingPass()
            engine = AnalysisEngine(spec, [counting],
                                    prefilter=filter_object)
            engine.add_globals(trace.globals)
            engine.run(trace.records)
            return counting.dispatched, engine.skipped_records

        full_dispatched, full_skipped = drive(None)
        fast_dispatched, fast_skipped = drive(prefilter)
        slow_dispatched, slow_skipped = drive(_ShouldSkipOnly(prefilter))
        assert fast_skipped == slow_skipped > 0
        assert fast_dispatched == slow_dispatched
        assert fast_dispatched + fast_skipped == full_dispatched
        assert full_skipped == 0

    def test_inside_region_records_are_never_skipped(self):
        _, module, spec, trace, options = _app_setup("example")
        analysis = analyze_module(module, spec=spec)
        prefilter = build_prefilter(analysis)
        counting = _CountingPass()
        engine = AnalysisEngine(spec, [counting], prefilter=prefilter)
        engine.add_globals(trace.globals)
        walk = engine.run(trace.records)
        # Every skipped record lies outside the loop extent.
        assert engine.skipped_records <= (walk.before_count
                                          + walk.after_count)


class TestConfigGating:
    def test_prefilter_requires_fused_engine(self, example_spec):
        with pytest.raises(ValueError, match="fused"):
            AutoCheckConfig(main_loop=example_spec, static_prefilter=True,
                            analysis_engine="multipass")

    def test_prefilter_requires_module(self, example_spec, example_trace):
        config = AutoCheckConfig(main_loop=example_spec,
                                 static_prefilter=True)
        with pytest.raises(AnalysisError, match="module"):
            AutoCheck(config, trace=example_trace).run()
