"""Property-based tests (hypothesis) for the CFG / dominator / loop
primitives the static subsystem builds on.

A random *structured* program shape — a nested sequence of straight-line
ops, if/else diamonds and while loops — is lowered through
:class:`repro.ir.builder.IRBuilder` exactly the way the frontend lowers
source, then the analyses must satisfy:

* every block the builder emitted is in the CFG and reachable from the
  entry (structured control flow has no dead blocks), and the CFG's
  blocks are exactly the function's blocks;
* dominator computation is deterministic/idempotent, the entry dominates
  everything, and every immediate dominator strictly dominates its node;
* every natural-loop header dominates every block of its loop (the
  defining property of a natural loop), latches included;
* the whole module passes the IR verifier (so the generator exercises
  the dominance checks on *valid* programs, not just the unit tests'
  hand-built violations).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import find_loops
from repro.ir import I32, Function, IRBuilder, Module, Opcode
from repro.ir.verifier import verify_module

# --------------------------------------------------------------------------- #
# Random structured-program shapes
# --------------------------------------------------------------------------- #
#: shape grammar: "op" | ("if", then_shape, else_shape) | ("loop", body_shape)
_shapes = st.recursive(
    st.just("op"),
    lambda children: st.one_of(
        st.tuples(st.just("if"),
                  st.lists(children, max_size=3),
                  st.lists(children, max_size=3)),
        st.tuples(st.just("loop"), st.lists(children, max_size=3)),
    ),
    max_leaves=12,
)
_programs = st.lists(_shapes, max_size=5)


def _emit_op(builder: IRBuilder, slot) -> None:
    value = builder.load(slot, I32)
    bumped = builder.binary(Opcode.ADD, value, builder.const_int(1), I32)
    builder.store(bumped, slot)


def _emit_cond(builder: IRBuilder, slot):
    value = builder.load(slot, I32)
    return builder.icmp("lt", value, builder.const_int(10))


def _emit_seq(builder: IRBuilder, shapes, slot) -> None:
    for shape in shapes:
        if shape == "op":
            _emit_op(builder, slot)
            continue
        tag = shape[0]
        if tag == "if":
            then_block = builder.new_block()
            else_block = builder.new_block()
            join_block = builder.new_block()
            builder.cond_br(_emit_cond(builder, slot), then_block, else_block)
            builder.set_block(then_block)
            _emit_seq(builder, shape[1], slot)
            builder.br(join_block)
            builder.set_block(else_block)
            _emit_seq(builder, shape[2], slot)
            builder.br(join_block)
            builder.set_block(join_block)
        else:  # "loop"
            header = builder.new_block()
            body = builder.new_block()
            exit_block = builder.new_block()
            builder.br(header)
            builder.set_block(header)
            builder.cond_br(_emit_cond(builder, slot), body, exit_block)
            builder.set_block(body)
            _emit_seq(builder, shape[1], slot)
            builder.br(header)
            builder.set_block(exit_block)


def _build_program(shapes):
    module = Module(name="prop")
    function = module.add_function(Function(name="main", return_type=I32))
    builder = IRBuilder(module, function)
    builder.set_block(builder.new_block("entry"))
    slot = builder.alloca(I32, "x")
    builder.store(builder.const_int(0), slot)
    _emit_seq(builder, shapes, slot)
    builder.ret(builder.const_int(0))
    return module, function


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #
@given(_programs)
@settings(max_examples=60, deadline=None)
def test_structured_programs_have_fully_reachable_cfgs(shapes):
    _, function = _build_program(shapes)
    cfg = build_cfg(function)
    blocks = set(function.blocks)
    assert set(cfg.blocks()) == blocks
    assert cfg.reachable_blocks() == blocks
    assert cfg.entry is function.blocks[0]


@given(_programs)
@settings(max_examples=60, deadline=None)
def test_dominator_computation_is_idempotent_and_rooted(shapes):
    _, function = _build_program(shapes)
    cfg = build_cfg(function)
    first = compute_dominators(cfg)
    second = compute_dominators(cfg)
    assert first.idom == second.idom
    entry = function.blocks[0]
    for block in function.blocks:
        assert first.dominates(entry, block)
        idom = first.idom.get(block)
        if block is entry:
            assert idom is None
        else:
            assert idom is not None
            assert first.strictly_dominates(idom, block)


@given(_programs)
@settings(max_examples=60, deadline=None)
def test_loop_headers_dominate_their_bodies(shapes):
    _, function = _build_program(shapes)
    info = find_loops(function)
    for loop in info.loops:
        assert loop.header in loop.blocks
        for block in loop.blocks:
            assert info.dom.dominates(loop.header, block), (
                f"header {loop.header.name} must dominate {block.name}")
        for latch in loop.latches:
            assert latch in loop.blocks


@given(_programs)
@settings(max_examples=40, deadline=None)
def test_generated_modules_pass_the_verifier(shapes):
    module, _ = _build_program(shapes)
    verify_module(module)
