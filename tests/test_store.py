"""The artifact store: serialization round-trip, digests, cache, batch, gc.

The two load-bearing guarantees, asserted here across every bundled app:

* **round trip** — ``report_from_json(report_to_json(r)) == r`` over the
  full report surface (critical variables, MLI set, DDG nodes+edges+kinds,
  R/W sequences, timings, trace stats);
* **warm = cold, for free** — a warm-cache ``analyze`` returns a report
  equal to the cold run's while performing *zero* trace-record decodes
  (the counting monkeypatches below intercept every decode path).
"""

from __future__ import annotations

import json
import os
import time
from types import SimpleNamespace

import pytest

from repro.apps.registry import app_names, get_app
from repro.codegen.lowering import compile_source
from repro.core.config import AutoCheckConfig
from repro.core.pipeline import AutoCheck
from repro.store import (
    ArtifactStore,
    BatchEntry,
    ManifestError,
    SerializationError,
    StoreError,
    artifact_key,
    compute_trace_digest,
    config_fingerprint,
    digest_file_bytes,
    digest_trace,
    load_manifest,
    report_from_json,
    report_to_json,
    run_batch,
)
from repro.trace.binio import BinaryTraceError, read_layout
from repro.tracer.driver import run_and_trace, trace_to_file

#: Every bundled application: the 14 study benchmarks + example + bigarray.
ALL_APP_NAMES = app_names(include_example=True) + ["bigarray"]


# The ``decode_counter`` fixture (counting monkeypatch over every
# bytes-to-records decode path) lives in ``conftest.py`` — the serve
# daemon's black-box suite shares it for its single-engine-walk proof.


# --------------------------------------------------------------------------- #
# Fleet fixture: every app traced to a binary file and cold-analysed once
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def fleet(tmp_path_factory):
    """Binary traces + cold cache-backed analyses of all bundled apps."""
    root = tmp_path_factory.mktemp("store-fleet")
    cache_dir = str(root / "cache")
    apps = {}
    for name in ALL_APP_NAMES:
        app = get_app(name)
        source = app.source()
        module = compile_source(source, module_name=app.name)
        spec = app.main_loop(source)
        trace_path = str(root / f"{name}.btrace")
        trace_to_file(module, trace_path, module_name=app.name, fmt="binary")
        config = AutoCheckConfig(main_loop=spec, use_cache=True,
                                 cache_dir=cache_dir,
                                 **dict(app.autocheck_options))
        report = AutoCheck(config, trace_path=trace_path, module=module).run()
        assert report.cache_info is not None and not report.cache_info.hit
        apps[name] = SimpleNamespace(app=app, module=module, config=config,
                                     trace_path=trace_path, report=report)
    return SimpleNamespace(cache_dir=cache_dir, apps=apps)


# --------------------------------------------------------------------------- #
# Round trip
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_APP_NAMES)
class TestRoundTrip:
    def test_report_round_trips_exactly(self, fleet, name):
        report = fleet.apps[name].report
        restored = report_from_json(report_to_json(report))
        assert restored == report

    def test_serialization_is_deterministic(self, fleet, name):
        report = fleet.apps[name].report
        assert report_to_json(report) == report_to_json(report)


class TestRoundTripSurface:
    """Spot-check that equality really covers the deep structures."""

    def test_ddg_edge_change_breaks_equality(self, fleet):
        report = fleet.apps["example"].report
        restored = report_from_json(report_to_json(report))
        edges = restored.complete_ddg.edges()
        assert edges, "example must produce a non-trivial DDG"
        parent, child = edges[0]
        restored.complete_ddg.remove_edge(parent, child)
        assert restored != report

    def test_rw_event_change_breaks_equality(self, fleet):
        report = fleet.apps["example"].report
        restored = report_from_json(report_to_json(report))
        assert restored.rw_sequence.loop_events, \
            "example must produce loop R/W events"
        restored.rw_sequence.loop_events.pop()
        assert restored != report

    def test_schema_mismatch_is_rejected(self, fleet):
        payload = json.loads(report_to_json(fleet.apps["example"].report))
        payload["schema"] = 999
        with pytest.raises(SerializationError, match="schema"):
            report_from_json(json.dumps(payload))

    def test_wrong_kind_is_rejected(self):
        with pytest.raises(SerializationError, match="kind"):
            report_from_json('{"kind": "something-else", "schema": 1}')

    def test_garbage_is_rejected(self):
        with pytest.raises(SerializationError):
            report_from_json("not json at all {")


# --------------------------------------------------------------------------- #
# Warm cache: equal report, zero record decodes — on every bundled app
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_APP_NAMES)
def test_warm_analyze_equals_cold_with_zero_decodes(fleet, name,
                                                    decode_counter):
    entry = fleet.apps[name]
    warm = AutoCheck(entry.config, trace_path=entry.trace_path,
                     module=entry.module).run()
    assert warm.cache_info is not None and warm.cache_info.hit
    assert warm == entry.report
    assert decode_counter["records"] == 0


def test_warm_analyze_on_text_trace_decodes_nothing(tmp_path, example_trace,
                                                    example_spec,
                                                    decode_counter):
    """Text traces digest by raw bytes — warm runs never parse a line."""
    from repro.trace.textio import write_trace_file

    path = str(tmp_path / "example.trace")
    write_trace_file(example_trace, path)
    config = AutoCheckConfig(main_loop=example_spec, use_cache=True,
                             cache_dir=str(tmp_path / "cache"))
    cold = AutoCheck(config, trace_path=path).run()
    assert decode_counter["records"] > 0
    decode_counter["records"] = 0
    warm = AutoCheck(config, trace_path=path).run()
    assert warm.cache_info.hit
    assert warm == cold
    assert decode_counter["records"] == 0


def test_in_memory_trace_shares_entries_with_file_runs(fleet, decode_counter):
    """An in-memory analysis of the same trace hits the file run's entry."""
    entry = fleet.apps["example"]
    trace, _ = run_and_trace(entry.module, module_name="example")
    report = AutoCheck(entry.config, trace=trace, module=entry.module).run()
    assert report.cache_info.hit
    assert report == entry.report
    assert decode_counter["records"] == 0


# --------------------------------------------------------------------------- #
# Digests
# --------------------------------------------------------------------------- #
class TestDigests:
    def test_in_memory_digest_matches_binary_footer(self, fleet):
        entry = fleet.apps["example"]
        trace, _ = run_and_trace(entry.module, module_name="example")
        assert digest_trace(trace) == \
            read_layout(entry.trace_path).content_digest

    def test_text_digest_is_raw_file_hash(self, tmp_path, example_trace):
        from repro.trace.textio import write_trace_file

        path = str(tmp_path / "t.trace")
        write_trace_file(example_trace, path)
        assert compute_trace_digest(path) == digest_file_bytes(path)

    def test_version1_binary_falls_back_to_file_hash(self, tmp_path, fleet):
        """A v1 file (no footer digest) is read fine and digested by bytes."""
        entry = fleet.apps["example"]
        with open(entry.trace_path, "rb") as handle:
            data = bytearray(handle.read())
        data[4:6] = (1).to_bytes(2, "little")  # header version u16 -> 1
        v1_path = str(tmp_path / "v1.btrace")
        with open(v1_path, "wb") as handle:
            handle.write(data)
        layout = read_layout(v1_path)
        assert layout.content_digest is None
        assert layout.record_count == read_layout(entry.trace_path).record_count
        assert compute_trace_digest(v1_path) == digest_file_bytes(v1_path)

    def test_digest_changes_with_content(self, fleet):
        a = fleet.apps["example"]
        b = fleet.apps["mg"]
        assert read_layout(a.trace_path).content_digest != \
            read_layout(b.trace_path).content_digest


# --------------------------------------------------------------------------- #
# Cache semantics
# --------------------------------------------------------------------------- #
class TestCacheSemantics:
    def test_different_fingerprint_misses(self, fleet, decode_counter):
        """Changing a semantic config field addresses a different entry."""
        entry = fleet.apps["example"]
        config = AutoCheckConfig(
            main_loop=entry.config.main_loop, use_cache=True,
            cache_dir=fleet.cache_dir,
            include_global_accesses_in_calls=True)
        report = AutoCheck(config, trace_path=entry.trace_path,
                           module=entry.module).run()
        assert not report.cache_info.hit
        assert decode_counter["records"] > 0

    def test_engine_choice_shares_the_entry(self, fleet, decode_counter):
        """Execution strategy is not in the fingerprint: a multipass run
        of a cached trace hits the fused run's entry."""
        entry = fleet.apps["example"]
        config = AutoCheckConfig(main_loop=entry.config.main_loop,
                                 use_cache=True, cache_dir=fleet.cache_dir,
                                 analysis_engine="multipass")
        report = AutoCheck(config, trace_path=entry.trace_path,
                           module=entry.module).run()
        assert report.cache_info.hit
        assert report == entry.report
        assert decode_counter["records"] == 0

    def test_corrupted_entry_is_a_miss_and_self_heals(self, tmp_path,
                                                      example_trace,
                                                      example_spec):
        cache_dir = str(tmp_path / "cache")
        config = AutoCheckConfig(main_loop=example_spec, use_cache=True,
                                 cache_dir=cache_dir)
        cold = AutoCheck(config, trace=example_trace).run()
        entry_path = cold.cache_info.path
        assert os.path.exists(entry_path)
        with open(entry_path, "w", encoding="utf-8") as handle:
            handle.write("{ corrupted")
        healed = AutoCheck(config, trace=example_trace).run()
        assert not healed.cache_info.hit
        # Recomputed, so timings differ; everything else must match.
        from repro.store import report_to_dict

        healed_dict, cold_dict = report_to_dict(healed), report_to_dict(cold)
        healed_dict.pop("timings"), cold_dict.pop("timings")
        assert healed_dict == cold_dict
        # The rewrite healed the slot: next run hits again.
        warm = AutoCheck(config, trace=example_trace).run()
        assert warm.cache_info.hit
        assert warm == healed

    def test_strict_load_of_corrupt_entry_names_path_and_key(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        key = "ab" + "0" * 62
        path = store.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage")
        with pytest.raises(StoreError) as excinfo:
            store.load_entry(path, key)
        message = str(excinfo.value)
        assert path in message
        assert key in message

    def test_missing_entry_load_is_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.load("ff" + "0" * 62) is None

    def test_artifact_key_components(self):
        base = artifact_key("d1", "f1", 1)
        assert artifact_key("d2", "f1", 1) != base
        assert artifact_key("d1", "f2", 1) != base
        assert artifact_key("d1", "f1", 2) != base

    def test_fingerprint_tracks_static_induction(self, example_spec):
        config = AutoCheckConfig(main_loop=example_spec)
        assert config_fingerprint(config, static_induction="it") != \
            config_fingerprint(config, static_induction=None)


# --------------------------------------------------------------------------- #
# Garbage collection
# --------------------------------------------------------------------------- #
class TestGC:
    def _populate(self, tmp_path, count=4):
        store = ArtifactStore(str(tmp_path / "cache"))
        # Entries need not be real reports for gc (it never deserializes);
        # distinct mtimes define the eviction order.
        now = time.time()
        for index in range(count):
            key = f"{index:02x}" + "0" * 62
            path = store.entry_path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("x" * 100)
            os.utime(path, (now - 1000 + index, now - 1000 + index))
        return store

    def test_max_entries_evicts_oldest_first(self, tmp_path):
        store = self._populate(tmp_path)
        result = store.gc(max_entries=2)
        assert result.evicted == 2 and result.kept == 2
        remaining = store.stats()
        assert remaining.entries == 2
        # The two oldest (smallest mtime) are the ones gone.
        assert not os.path.exists(store.entry_path("00" + "0" * 62))
        assert os.path.exists(store.entry_path("03" + "0" * 62))

    def test_max_age_evicts_only_old_entries(self, tmp_path):
        store = self._populate(tmp_path)
        fresh_key = "aa" + "0" * 62
        path = store.entry_path(fresh_key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("x")
        result = store.gc(max_age_seconds=500.0)
        assert result.evicted == 4 and result.kept == 1
        assert os.path.exists(path)

    def test_max_bytes_keeps_newest(self, tmp_path):
        store = self._populate(tmp_path)
        result = store.gc(max_bytes=250)
        assert result.kept == 2 and result.evicted == 2

    def test_dry_run_removes_nothing(self, tmp_path):
        store = self._populate(tmp_path)
        result = store.gc(clear=True, dry_run=True)
        assert result.evicted == 4
        assert store.stats().entries == 4

    def test_clear(self, tmp_path):
        store = self._populate(tmp_path)
        store.gc(clear=True)
        assert store.stats().entries == 0

    def test_no_limits_is_inventory_only(self, tmp_path):
        store = self._populate(tmp_path)
        result = store.gc()
        assert result.evicted == 0 and result.kept == 4

    def test_load_hit_refreshes_eviction_order(self, tmp_path,
                                               example_trace, example_spec):
        """Eviction is LRU: a hit entry outlives never-read newer ones."""
        cache_dir = str(tmp_path / "cache")
        config = AutoCheckConfig(main_loop=example_spec, use_cache=True,
                                 cache_dir=cache_dir)
        hot = AutoCheck(config, trace=example_trace).run()
        store = ArtifactStore(cache_dir)
        now = time.time()
        os.utime(hot.cache_info.path, (now - 1000, now - 1000))
        cold_key = "cd" + "0" * 62
        cold_path = store.entry_path(cold_key)
        os.makedirs(os.path.dirname(cold_path), exist_ok=True)
        with open(cold_path, "w", encoding="utf-8") as handle:
            handle.write("x")
        os.utime(cold_path, (now - 500, now - 500))
        # Without the hit, the hot entry is the older one and would go.
        assert AutoCheck(config, trace=example_trace).run().cache_info.hit
        result = store.gc(max_entries=1)
        assert result.evicted == 1
        assert os.path.exists(hot.cache_info.path)
        assert not os.path.exists(cold_path)


# --------------------------------------------------------------------------- #
# Batch frontend
# --------------------------------------------------------------------------- #
class TestBatch:
    def _manifest(self, tmp_path):
        manifest = {
            "trace_dir": "traces",
            "entries": [
                {"app": "example"},
                {"app": "mg", "params": {"n": 24, "iters": 5}},
            ],
        }
        path = str(tmp_path / "manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        return path

    def test_cold_then_warm(self, tmp_path):
        path = self._manifest(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold = run_batch(path, workers=1, cache_dir=cache_dir)
        assert cold.all_ok and cold.misses == 2 and cold.hits == 0
        warm = run_batch(path, workers=1, cache_dir=cache_dir)
        assert warm.all_ok and warm.hits == 2 and warm.misses == 0
        assert "hit" in warm.summary()
        # Traces were generated once, into the manifest-relative dir.
        assert os.path.isdir(str(tmp_path / "traces"))

    def test_process_pool_warm_run(self, tmp_path):
        path = self._manifest(tmp_path)
        cache_dir = str(tmp_path / "cache")
        run_batch(path, workers=1, cache_dir=cache_dir)
        pooled = run_batch(path, workers=2, cache_dir=cache_dir)
        assert pooled.all_ok and pooled.hits == 2

    def test_trace_entry(self, tmp_path, example_trace, example_spec):
        from repro.trace import write_trace_file_binary

        trace_path = str(tmp_path / "ex.btrace")
        write_trace_file_binary(example_trace, trace_path)
        entry = BatchEntry(trace=trace_path,
                           function=example_spec.function,
                           start=example_spec.start_line,
                           end=example_spec.end_line)
        result = run_batch([entry], cache_dir=str(tmp_path / "cache"))
        assert result.all_ok and result.misses == 1
        assert any("WAR" in item for item in result.items[0].critical)

    def test_failures_are_isolated(self, tmp_path):
        entries = [BatchEntry(app="example"),
                   BatchEntry(app="no-such-app")]
        result = run_batch(entries, cache_dir=str(tmp_path / "cache"),
                           trace_dir=str(tmp_path / "traces"))
        assert not result.all_ok
        assert result.failures == 1
        ok = {item.name: item.ok for item in result.items}
        assert ok == {"example": True, "no-such-app": False}
        assert result.items[1].error

    def test_manifest_trace_paths_resolve_against_manifest_dir(
            self, tmp_path, example_trace, example_spec, monkeypatch):
        """A manifest with relative trace paths works from any cwd."""
        from repro.trace import write_trace_file_binary

        project = tmp_path / "project"
        project.mkdir()
        write_trace_file_binary(example_trace, str(project / "run.btrace"))
        manifest = str(project / "manifest.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump([{"trace": "run.btrace",
                        "function": example_spec.function,
                        "start": example_spec.start_line,
                        "end": example_spec.end_line}], handle)
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        entries, _ = load_manifest(manifest)
        assert entries[0].trace == str(project / "run.btrace")
        result = run_batch(manifest, cache_dir=str(tmp_path / "cache"))
        assert result.all_ok

    def test_corrupt_reused_trace_self_heals(self, tmp_path):
        """A truncated leftover under the reuse name is regenerated, not
        reused forever."""
        from repro.store import app_trace_path

        trace_dir = str(tmp_path / "traces")
        os.makedirs(trace_dir)
        stale = app_trace_path(trace_dir, "example")
        with open(stale, "wb") as handle:
            handle.write(b"ACTB garbage truncated")
        result = run_batch([BatchEntry(app="example")],
                           cache_dir=str(tmp_path / "cache"),
                           trace_dir=trace_dir)
        assert result.all_ok
        from repro.trace.binio import read_layout

        assert read_layout(stale).record_count > 0

    def test_manifest_validation(self, tmp_path):
        bad = str(tmp_path / "bad.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write('[{"app": "x", "trace": "y"}]')
        with pytest.raises(ManifestError, match="exactly one"):
            load_manifest(bad)
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write('[{"trace": "y.trace"}]')
        with pytest.raises(ManifestError, match="start"):
            load_manifest(bad)
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write("[]")
        with pytest.raises(ManifestError, match="no entries"):
            load_manifest(bad)
        with pytest.raises(ManifestError, match="cannot read"):
            load_manifest(str(tmp_path / "missing.json"))


# --------------------------------------------------------------------------- #
# Error context: open failures name the offending file (and digest/key)
# --------------------------------------------------------------------------- #
class TestErrorContext:
    def test_truncated_binary_trace_names_the_file(self, tmp_path, fleet):
        source = fleet.apps["example"].trace_path
        with open(source, "rb") as handle:
            data = handle.read()
        truncated = str(tmp_path / "trunc.btrace")
        with open(truncated, "wb") as handle:
            handle.write(data[:len(data) // 2])
        from repro.trace.textio import read_preamble

        with pytest.raises(BinaryTraceError, match="trunc.btrace"):
            read_preamble(truncated)

    def test_version_skew_names_the_file(self, tmp_path, fleet):
        source = fleet.apps["example"].trace_path
        with open(source, "rb") as handle:
            data = bytearray(handle.read())
        data[4:6] = (77).to_bytes(2, "little")
        skewed = str(tmp_path / "skew.btrace")
        with open(skewed, "wb") as handle:
            handle.write(data)
        with pytest.raises(BinaryTraceError) as excinfo:
            read_layout(skewed)
        assert "skew.btrace" in str(excinfo.value)
        assert "version 77" in str(excinfo.value)

    def test_malformed_text_preamble_names_file_and_line(self, tmp_path):
        from repro.trace.textio import TraceFormatError, read_preamble

        path = str(tmp_path / "bad.trace")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("#,autocheck-trace,1,m\n")
            handle.write("g,x,not-hex,4,32,0\n")
        with pytest.raises(TraceFormatError) as excinfo:
            read_preamble(path)
        message = str(excinfo.value)
        assert "bad.trace" in message
        assert "not-hex" in message
