"""Streaming (single-pass, bounded-memory) pre-processing equivalence.

The streaming mode must be observationally identical to the materialized
path: same regions, same MLI variables, same critical variables and
dependency labels — on the worked example and on every registered benchmark
(the acceptance bar for the paper's Table II reproduction).
"""

from __future__ import annotations

import pytest

from repro.apps import all_apps
from repro.codegen.lowering import compile_source
from repro.core import AutoCheck, AutoCheckConfig
from repro.core.preprocessing import (
    StreamingTraceRegions,
    identify_mli_variables,
    identify_mli_variables_streaming,
    partition_trace,
)
from repro.tracer.driver import trace_to_file
from repro.trace import write_trace_file_binary


@pytest.fixture(scope="module", params=["text", "binary"])
def example_trace_file(request, example_trace, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("stream") / f"ex.{request.param}")
    if request.param == "binary":
        write_trace_file_binary(example_trace, path)
    else:
        from repro.trace import write_trace_file

        write_trace_file(example_trace, path)
    return path


class TestStreamingRegions:
    def test_region_views_match_materialized(self, example_trace,
                                             example_trace_file, example_spec):
        materialized = partition_trace(example_trace, example_spec)
        streaming = identify_mli_variables_streaming(
            example_trace_file, example_spec).regions
        assert isinstance(streaming, StreamingTraceRegions)
        assert len(streaming.before) == len(materialized.before)
        assert len(streaming.inside) == len(materialized.inside)
        assert len(streaming.after) == len(materialized.after)
        assert streaming.first_loop_dyn_id == materialized.first_loop_dyn_id
        assert streaming.last_loop_dyn_id == materialized.last_loop_dyn_id
        assert list(streaming.inside) == materialized.inside
        assert list(streaming.after) == materialized.after
        assert streaming.total_records == materialized.total_records

    def test_region_views_are_reiterable(self, example_trace_file,
                                         example_spec):
        regions = identify_mli_variables_streaming(
            example_trace_file, example_spec).regions
        first = [r.dyn_id for r in regions.inside]
        second = [r.dyn_id for r in regions.inside]
        assert first == second != []

    def test_variable_sets_match(self, example_trace, example_trace_file,
                                 example_spec):
        materialized = identify_mli_variables(example_trace, example_spec)
        streaming = identify_mli_variables_streaming(example_trace_file,
                                                     example_spec)
        assert streaming.mli_keys() == materialized.mli_keys()
        assert set(streaming.before_variables) == \
            set(materialized.before_variables)
        assert set(streaming.inside_variables) == \
            set(materialized.inside_variables)


class TestStreamingPipeline:
    def test_report_identical_on_example(self, example_trace_file,
                                         example_spec):
        materialized = AutoCheck(AutoCheckConfig(main_loop=example_spec),
                                 trace_path=example_trace_file).run()
        streaming = AutoCheck(
            AutoCheckConfig(main_loop=example_spec,
                            streaming_preprocessing=True),
            trace_path=example_trace_file).run()
        assert streaming.mli_variable_names == materialized.mli_variable_names
        assert streaming.dependency_string() == materialized.dependency_string()
        assert streaming.induction_variable == materialized.induction_variable
        for attr in ("record_count", "before_count", "inside_count",
                     "after_count", "global_count"):
            assert getattr(streaming.trace_stats, attr) == \
                getattr(materialized.trace_stats, attr)

    def test_streaming_and_parallel_are_mutually_exclusive(self, example_spec):
        with pytest.raises(ValueError, match="mutually exclusive"):
            AutoCheckConfig(main_loop=example_spec,
                            parallel_preprocessing=True,
                            streaming_preprocessing=True)

    def test_streaming_falls_back_for_in_memory_traces(self, example_trace,
                                                       example_spec,
                                                       example_report):
        report = AutoCheck(
            AutoCheckConfig(main_loop=example_spec,
                            streaming_preprocessing=True),
            trace=example_trace).run()
        assert report.dependency_string() == example_report.dependency_string()


@pytest.mark.parametrize("app", all_apps(), ids=lambda app: app.name)
def test_streaming_report_identical_on_all_apps(app, tmp_path):
    """Acceptance: identical MLI variables, critical variables and dependency
    labels on every registered benchmark, via the binary trace format."""
    source = app.source()
    module = compile_source(source, module_name=app.name)
    spec = app.main_loop(source)
    path = str(tmp_path / f"{app.name}.btrace")
    trace_to_file(module, path, fmt="binary")

    options = dict(app.autocheck_options)
    materialized = AutoCheck(AutoCheckConfig(main_loop=spec, **options),
                             trace_path=path).run()
    streaming = AutoCheck(
        AutoCheckConfig(main_loop=spec, streaming_preprocessing=True,
                        **options),
        trace_path=path).run()

    assert streaming.mli_variable_names == materialized.mli_variable_names
    assert [(v.name, v.dependency) for v in streaming.critical_variables] == \
        [(v.name, v.dependency) for v in materialized.critical_variables]
    assert streaming.dependency_string() == materialized.dependency_string()
    assert streaming.induction_variable == materialized.induction_variable
