"""Unit tests for the block-indexed binary trace format."""

import os
import struct

import pytest

from repro.ir.opcodes import Opcode
from repro.trace import (
    BinaryTraceError,
    GlobalSymbol,
    Trace,
    TraceBinaryReader,
    TraceBinaryWriter,
    TraceOperand,
    TraceRecord,
    is_binary_trace_file,
    iter_trace_records,
    partition_offsets_binary,
    read_preamble,
    read_trace_file,
    read_trace_file_binary,
    read_trace_file_binary_parallel,
    sniff_trace_format,
    write_trace_file,
    write_trace_file_binary,
)
from repro.trace.binio import INDEX_STRIDE, read_layout


def make_record(dyn_id=1, opcode=Opcode.LOAD, function="main", name="x",
                value=3.5, address=0x1000):
    return TraceRecord(
        dyn_id=dyn_id,
        opcode=int(opcode),
        opcode_name=opcode.mnemonic,
        function=function,
        line=5,
        column=2,
        bb_label=1,
        bb_id="5:1",
        operands=[TraceOperand(index="1", bits=64, value=value,
                               is_register=False, name=name, address=address)],
        result=TraceOperand(index="r", bits=64, value=value, is_register=True,
                            name="8", address=None),
    )


@pytest.fixture(scope="module")
def binary_trace_file(example_trace, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("btraces") / "example.btrace")
    write_trace_file_binary(example_trace, path)
    return path


class TestRoundTrip:
    def test_file_roundtrip_full_equality(self, example_trace,
                                          binary_trace_file):
        loaded = read_trace_file_binary(binary_trace_file)
        assert loaded.module_name == example_trace.module_name
        assert loaded.globals == example_trace.globals
        assert loaded.records == example_trace.records

    def test_text_and_binary_encodings_agree(self, example_trace, tmp_path):
        text_path = str(tmp_path / "t.trace")
        binary_path = str(tmp_path / "b.btrace")
        write_trace_file(example_trace, text_path)
        write_trace_file_binary(example_trace, binary_path)
        assert read_trace_file(text_path).records == \
            read_trace_file(binary_path).records

    def test_non_ascii_and_comma_identifiers(self, tmp_path):
        # Names the text format must reject round-trip exactly in binary.
        trace = Trace(module_name="mod,ule\nπ",
                      globals=[GlobalSymbol("glob,al", 0x10, 8, 64, False)],
                      records=[make_record(dyn_id=1, function="fün,c",
                                           name="va\nr")])
        path = str(tmp_path / "weird.btrace")
        write_trace_file_binary(trace, path)
        loaded = read_trace_file_binary(path)
        assert loaded.module_name == "mod,ule\nπ"
        assert loaded.globals == trace.globals
        assert loaded.records == trace.records

    def test_value_kinds_roundtrip(self, tmp_path):
        values = [0, -1, 2**62, -(2**62), 2**80, -(2**80), 0.5, -1e300,
                  True, 3]
        records = [make_record(dyn_id=i + 1, value=v)
                   for i, v in enumerate(values)]
        trace = Trace(module_name="vals", records=records)
        path = str(tmp_path / "vals.btrace")
        write_trace_file_binary(trace, path)
        loaded = read_trace_file_binary(path)
        for original, parsed in zip(values, loaded.records):
            got = parsed.operands[0].value
            # bools are canonicalised to ints (same as the text format)
            assert got == original
            assert isinstance(got, float) == isinstance(original, float)

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.btrace")
        write_trace_file_binary(Trace(module_name="void"), path)
        loaded = read_trace_file_binary(path)
        assert loaded.module_name == "void"
        assert loaded.records == []
        assert read_trace_file_binary_parallel(path, num_workers=4).records == []

    def test_streaming_writer_is_a_trace_sink(self, tmp_path):
        path = str(tmp_path / "sink.btrace")
        with TraceBinaryWriter(path, module_name="m") as writer:
            writer.write_record(make_record(dyn_id=1))
            # globals may arrive at any time before close (footer encoding)
            writer.write_global(GlobalSymbol("g", 0x1000, 8, 64, False))
            writer.write_record(make_record(dyn_id=2))
            assert writer.record_count == 2
        module_name, globals_ = read_preamble(path)
        assert module_name == "m"
        assert [g.name for g in globals_] == ["g"]


class TestIndexAndSeek:
    @pytest.fixture(scope="class")
    def big_file(self, tmp_path_factory):
        count = INDEX_STRIDE * 3 + 17
        trace = Trace(module_name="big",
                      records=[make_record(dyn_id=i + 1, value=i)
                               for i in range(count)])
        path = str(tmp_path_factory.mktemp("btraces") / "big.btrace")
        write_trace_file_binary(trace, path)
        return path, count

    def test_layout_counts(self, big_file):
        path, count = big_file
        layout = read_layout(path)
        assert layout.record_count == count
        assert len(layout.block_offsets) == 4  # ceil(count / stride)
        assert layout.block_offsets[0] == layout.records_start

    def test_iter_with_start_record_seeks_via_index(self, big_file):
        path, count = big_file
        full = read_trace_file_binary(path).records
        for start in (0, 1, INDEX_STRIDE - 1, INDEX_STRIDE,
                      2 * INDEX_STRIDE + 5, count - 1, count, count + 10):
            tail = list(iter_trace_records(path, start_record=start))
            assert tail == full[start:]

    def test_partition_offsets_cover_record_region(self, big_file):
        path, _ = big_file
        layout = read_layout(path)
        partitions = partition_offsets_binary(path, 5)
        assert partitions[0].start == layout.records_start
        assert partitions[-1].end == layout.records_end
        for previous, current in zip(partitions, partitions[1:]):
            assert previous.end == current.start
        # every boundary is a record start taken from the index
        interior = {p.start for p in partitions[1:]}
        assert interior <= set(layout.block_offsets) | {layout.records_end}

    @pytest.mark.parametrize("workers", [2, 3, 8])
    def test_parallel_equals_serial(self, big_file, workers):
        path, _ = big_file
        serial = read_trace_file_binary(path)
        parallel = read_trace_file_binary_parallel(path, num_workers=workers)
        assert parallel.records == serial.records
        assert parallel.globals == serial.globals

    def test_parallel_with_processes(self, big_file):
        path, _ = big_file
        serial = read_trace_file_binary(path)
        parallel = read_trace_file_binary_parallel(path, num_workers=2,
                                                   use_processes=True)
        assert parallel.records == serial.records


class TestSniffing:
    def test_sniff_formats(self, tmp_path, example_trace):
        text_path = str(tmp_path / "a.trace")
        binary_path = str(tmp_path / "a.btrace")
        write_trace_file(example_trace, text_path)
        write_trace_file_binary(example_trace, binary_path)
        assert sniff_trace_format(text_path) == "text"
        assert sniff_trace_format(binary_path) == "binary"
        assert not is_binary_trace_file(text_path)
        assert is_binary_trace_file(binary_path)

    def test_front_door_reads_both(self, tmp_path, example_trace):
        text_path = str(tmp_path / "a.trace")
        binary_path = str(tmp_path / "a.btrace")
        write_trace_file(example_trace, text_path)
        write_trace_file_binary(example_trace, binary_path)
        assert read_trace_file(binary_path).records == \
            read_trace_file(text_path).records
        assert read_preamble(binary_path)[0] == read_preamble(text_path)[0]
        assert list(iter_trace_records(binary_path, start_record=3)) == \
            list(iter_trace_records(text_path, start_record=3))


class TestErrors:
    def test_not_binary(self, tmp_path):
        path = str(tmp_path / "nope")
        with open(path, "w") as handle:
            handle.write("0,1,2\n")
        with pytest.raises(BinaryTraceError):
            read_trace_file_binary(path)

    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "trunc.btrace")
        write_trace_file_binary(
            Trace(module_name="m", records=[make_record()]), path)
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            data = handle.read(size - 7)
        with open(path, "wb") as handle:
            handle.write(data)
        with pytest.raises(BinaryTraceError):
            read_trace_file_binary(path)

    def test_unknown_version(self, tmp_path):
        path = str(tmp_path / "vers.btrace")
        write_trace_file_binary(Trace(module_name="m"), path)
        with open(path, "r+b") as handle:
            handle.seek(4)
            handle.write(struct.pack("<H", 999))
        with pytest.raises(BinaryTraceError):
            TraceBinaryReader(path)
