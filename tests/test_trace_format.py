"""Unit tests for trace records and the text trace format."""

import os

import pytest

from repro.ir.opcodes import Opcode
from repro.trace import (
    GlobalSymbol,
    Trace,
    TraceOperand,
    TraceRecord,
    parse_record_lines,
    read_trace_file,
    record_to_lines,
    write_trace_file,
)
from repro.trace.textio import TraceFormatError, TraceTextWriter, read_preamble


def make_record(dyn_id=1, opcode=Opcode.LOAD, function="main", line=5,
                name="x", address=0x1000, value=3.5):
    return TraceRecord(
        dyn_id=dyn_id,
        opcode=int(opcode),
        opcode_name=opcode.mnemonic,
        function=function,
        line=line,
        column=2,
        bb_label=1,
        bb_id="5:1",
        operands=[TraceOperand(index="1", bits=64, value=value,
                               is_register=False, name=name, address=address)],
        result=TraceOperand(index="r", bits=64, value=value, is_register=True,
                            name="8", address=None),
    )


class TestRecordPredicates:
    def test_load_predicates(self):
        record = make_record(opcode=Opcode.LOAD)
        assert record.is_load and not record.is_store
        assert record.memory_operand().name == "x"

    def test_store_memory_operand_is_second(self):
        record = TraceRecord(dyn_id=2, opcode=int(Opcode.STORE), opcode_name="Store",
                             function="main", line=6, column=1, bb_label=0,
                             bb_id="6:0",
                             operands=[
                                 TraceOperand("1", 64, 1.0, True, "9", None),
                                 TraceOperand("2", 64, 1.0, False, "y", 0x2000),
                             ])
        assert record.is_store
        assert record.memory_operand().name == "y"

    def test_alloca_memory_operand_is_result(self):
        record = TraceRecord(dyn_id=3, opcode=int(Opcode.ALLOCA), opcode_name="Alloca",
                             function="foo", line=2, column=1, bb_label=0,
                             bb_id="2:0",
                             operands=[TraceOperand("1", 32, 4, False, "count", None)],
                             result=TraceOperand("r", 32, 0, False, "buf", 0x3000))
        assert record.is_alloca
        assert record.memory_operand().name == "buf"

    def test_arithmetic_predicate(self):
        record = make_record(opcode=Opcode.FMUL)
        assert record.is_arithmetic

    def test_call_parameter_split(self):
        record = TraceRecord(dyn_id=4, opcode=int(Opcode.CALL), opcode_name="Call",
                             function="main", line=9, column=1, bb_label=0,
                             bb_id="9:0", callee="foo",
                             operands=[
                                 TraceOperand("1", 64, 0x10, True, "6", 0x10),
                                 TraceOperand("p1", 64, 0x10, False, "p", 0x10),
                             ])
        assert [op.name for op in record.argument_operands()] == ["6"]
        assert [op.name for op in record.parameter_operands()] == ["p"]

    def test_trace_container_helpers(self):
        trace = Trace(module_name="m")
        trace.append(make_record(dyn_id=1, function="main"))
        trace.extend([make_record(dyn_id=2, function="foo")])
        assert len(trace) == 2
        assert trace.functions() == ["main", "foo"]
        assert len(trace.records_in_function("foo")) == 1
        assert [r.dyn_id for r in trace.slice(2, 2)] == [2]

    def test_global_symbol_contains(self):
        symbol = GlobalSymbol(name="u", address=0x100, size_bytes=80,
                              element_bits=64, is_array=True)
        assert symbol.contains(0x100)
        assert symbol.contains(0x14F)
        assert not symbol.contains(0x150)


class TestTextRoundTrip:
    def test_record_to_lines_structure(self):
        lines = record_to_lines(make_record())
        assert lines[0].startswith("0,")
        assert lines[1].startswith("op,")
        assert lines[2].startswith("res,")

    def test_parse_record_lines_roundtrip(self):
        record = make_record(value=2.5)
        parsed = parse_record_lines(record_to_lines(record))
        assert len(parsed) == 1
        out = parsed[0]
        assert out.dyn_id == record.dyn_id
        assert out.opcode == record.opcode
        assert out.function == record.function
        assert out.operands[0].name == "x"
        assert out.operands[0].address == 0x1000
        assert out.operands[0].value == 2.5
        assert out.result.is_register

    def test_parse_rejects_orphan_operand(self):
        with pytest.raises(TraceFormatError):
            parse_record_lines(["op,1,64,0,x,1,0x10"])

    def test_parse_rejects_unknown_tag(self):
        with pytest.raises(TraceFormatError):
            parse_record_lines(["zz,what"])

    def test_parse_rejects_malformed_header_field_count(self):
        # too few fields (7) and too many (11 — e.g. an unescaped comma in a
        # name written by a pre-validation writer)
        with pytest.raises(TraceFormatError, match="header has 7 fields"):
            parse_record_lines(["0,1,27,Load,main,5,2"])
        with pytest.raises(TraceFormatError, match="header has 11 fields"):
            parse_record_lines(["0,1,27,Load,ma,in,5,2,1,5:1,"])

    def test_parse_rejects_malformed_operand_field_count(self):
        record_header = "0,1,27,Load,main,5,2,1,5:1,"
        with pytest.raises(TraceFormatError, match="operand line has 8"):
            parse_record_lines([record_header, "op,1,64,0,x,y,1,0x10"])
        with pytest.raises(TraceFormatError, match="result line has 7"):
            parse_record_lines([record_header, "res,64,0,x,y,1,0x10"])

    def test_negative_and_int_values_roundtrip(self):
        record = make_record(value=-7)
        parsed = parse_record_lines(record_to_lines(record))[0]
        assert parsed.operands[0].value == -7
        assert isinstance(parsed.operands[0].value, int)

    def test_file_roundtrip(self, tmp_path):
        trace = Trace(module_name="demo",
                      globals=[GlobalSymbol("g", 0x1000, 32, 64, True)],
                      records=[make_record(dyn_id=i + 1) for i in range(5)])
        path = str(tmp_path / "demo.trace")
        size = write_trace_file(trace, path)
        assert size == os.path.getsize(path)
        loaded = read_trace_file(path)
        assert loaded.module_name == "demo"
        assert len(loaded.globals) == 1
        assert loaded.globals[0].name == "g"
        assert [r.dyn_id for r in loaded.records] == [1, 2, 3, 4, 5]

    def test_writer_rejects_comma_in_names(self, tmp_path):
        """The comma-separated format cannot escape commas; silently writing
        them used to corrupt every later field of the line."""
        path = str(tmp_path / "bad.trace")
        with TraceTextWriter(path, module_name="m") as writer:
            with pytest.raises(TraceFormatError, match="function name"):
                writer.write_record(make_record(function="ma,in"))
            with pytest.raises(TraceFormatError, match="operand name"):
                writer.write_record(make_record(name="x,y"))
            with pytest.raises(TraceFormatError, match="global name"):
                writer.write_global(GlobalSymbol("g,1", 0x10, 8, 64, False))

    def test_writer_rejects_newline_in_names(self, tmp_path):
        path = str(tmp_path / "bad2.trace")
        with TraceTextWriter(path, module_name="m") as writer:
            with pytest.raises(TraceFormatError):
                writer.write_record(make_record(function="ma\nin"))
            with pytest.raises(TraceFormatError):
                writer.write_record(make_record(name="x\ry"))

    def test_writer_rejects_bad_module_name(self, tmp_path):
        with pytest.raises(TraceFormatError, match="module name"):
            TraceTextWriter(str(tmp_path / "bad3.trace"), module_name="a,b")

    def test_streaming_writer_counts_records(self, tmp_path):
        path = str(tmp_path / "stream.trace")
        with TraceTextWriter(path, module_name="m") as writer:
            writer.write_global(GlobalSymbol("g", 0x1000, 8, 64, False))
            writer.write_record(make_record(dyn_id=1))
            writer.write_record(make_record(dyn_id=2))
            assert writer.record_count == 2
        module_name, globals_ = read_preamble(path)
        assert module_name == "m"
        assert [g.name for g in globals_] == ["g"]

    def test_non_ascii_names_roundtrip(self, tmp_path):
        trace = Trace(module_name="módulo",
                      globals=[GlobalSymbol("søren", 0x2000, 16, 64, True)],
                      records=[make_record(name="π_var", function="fünc")])
        path = str(tmp_path / "nonascii.trace")
        write_trace_file(trace, path)
        loaded = read_trace_file(path)
        assert loaded.module_name == "módulo"
        assert loaded.globals == trace.globals
        assert loaded.records == trace.records

    def test_real_trace_roundtrip(self, example_trace, tmp_path):
        path = str(tmp_path / "example.trace")
        write_trace_file(example_trace, path)
        loaded = read_trace_file(path)
        assert len(loaded.records) == len(example_trace.records)
        for original, parsed in zip(example_trace.records[:200], loaded.records[:200]):
            assert original.dyn_id == parsed.dyn_id
            assert original.opcode == parsed.opcode
            assert original.function == parsed.function
            assert original.line == parsed.line
            assert len(original.operands) == len(parsed.operands)
