"""Unit tests for the parallel, block-preserving trace-file partitioning."""

import pytest

from repro.trace import (
    partition_offsets,
    read_trace_file,
    read_trace_file_parallel,
    write_trace_file,
)


@pytest.fixture(scope="module")
def trace_file(example_trace, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "example.trace")
    write_trace_file(example_trace, path)
    return path


class TestPartitioning:
    def test_partitions_cover_whole_file(self, trace_file):
        import os

        partitions = partition_offsets(trace_file, 4)
        assert partitions[0].start == 0
        assert partitions[-1].end == os.path.getsize(trace_file)
        for previous, current in zip(partitions, partitions[1:]):
            assert previous.end == current.start

    def test_partition_boundaries_fall_on_record_starts(self, trace_file):
        partitions = partition_offsets(trace_file, 5)
        with open(trace_file, "r", encoding="utf-8") as handle:
            data = handle.read()
        for part in partitions[1:]:
            if part.start < len(data):
                assert data[part.start:part.start + 2] == "0,", \
                    "partition must start at an instruction block boundary"

    def test_single_partition(self, trace_file):
        partitions = partition_offsets(trace_file, 1)
        assert len(partitions) == 1

    def test_more_partitions_than_records_is_safe(self, tmp_path, example_trace):
        from repro.trace.records import Trace

        tiny = Trace(module_name="tiny", globals=list(example_trace.globals),
                     records=example_trace.records[:3])
        path = str(tmp_path / "tiny.trace")
        write_trace_file(tiny, path)
        partitions = partition_offsets(path, 16)
        assert len(partitions) == 16
        parallel = read_trace_file_parallel(path, num_workers=16)
        assert len(parallel.records) == 3

    def test_invalid_partition_count(self, trace_file):
        with pytest.raises(ValueError):
            partition_offsets(trace_file, 0)


class TestParallelRead:
    def test_parallel_equals_serial(self, trace_file):
        serial = read_trace_file(trace_file)
        parallel = read_trace_file_parallel(trace_file, num_workers=4)
        assert len(serial.records) == len(parallel.records)
        assert [r.dyn_id for r in serial.records] == \
               [r.dyn_id for r in parallel.records]
        assert [r.opcode for r in serial.records] == \
               [r.opcode for r in parallel.records]
        assert [g.name for g in serial.globals] == [g.name for g in parallel.globals]

    def test_parallel_operand_fidelity(self, trace_file):
        serial = read_trace_file(trace_file)
        parallel = read_trace_file_parallel(trace_file, num_workers=3)
        for s_record, p_record in zip(serial.records, parallel.records):
            assert len(s_record.operands) == len(p_record.operands)
            for s_op, p_op in zip(s_record.operands, p_record.operands):
                assert s_op.name == p_op.name
                assert s_op.address == p_op.address
                assert s_op.value == p_op.value

    def test_single_worker_path(self, trace_file):
        single = read_trace_file_parallel(trace_file, num_workers=1)
        serial = read_trace_file(trace_file)
        assert len(single.records) == len(serial.records)

    def test_analysis_identical_on_serial_and_parallel_read(self, trace_file,
                                                            example_spec):
        from repro.core import AutoCheck, AutoCheckConfig

        serial_report = AutoCheck(AutoCheckConfig(main_loop=example_spec),
                                  trace_path=trace_file).run()
        parallel_report = AutoCheck(
            AutoCheckConfig(main_loop=example_spec, parallel_preprocessing=True,
                            preprocessing_workers=4),
            trace_path=trace_file).run()
        assert serial_report.dependency_string() == parallel_report.dependency_string()
