"""Unit tests for the parallel, block-preserving trace-file partitioning."""

import os

import pytest

from repro.ir.opcodes import Opcode
from repro.trace import (
    GlobalSymbol,
    Trace,
    TraceOperand,
    TraceRecord,
    partition_offsets,
    partition_offsets_binary,
    partition_records,
    read_trace_file,
    read_trace_file_parallel,
    write_trace_file,
    write_trace_file_binary,
)


@pytest.fixture(scope="module")
def trace_file(example_trace, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "example.trace")
    write_trace_file(example_trace, path)
    return path


class TestPartitioning:
    def test_partitions_cover_whole_file(self, trace_file):
        partitions = partition_offsets(trace_file, 4)
        assert partitions[0].start == 0
        assert partitions[-1].end == os.path.getsize(trace_file)
        for previous, current in zip(partitions, partitions[1:]):
            assert previous.end == current.start

    def test_partition_boundaries_fall_on_record_starts(self, trace_file):
        partitions = partition_offsets(trace_file, 5)
        # Offsets are *byte* offsets, so the check must read bytes.
        with open(trace_file, "rb") as handle:
            data = handle.read()
        for part in partitions[1:]:
            if part.start < len(data):
                assert data[part.start:part.start + 2] == b"0,", \
                    "partition must start at an instruction block boundary"

    def test_single_partition(self, trace_file):
        partitions = partition_offsets(trace_file, 1)
        assert len(partitions) == 1

    def test_more_partitions_than_records_is_safe(self, tmp_path, example_trace):
        tiny = Trace(module_name="tiny", globals=list(example_trace.globals),
                     records=example_trace.records[:3])
        path = str(tmp_path / "tiny.trace")
        write_trace_file(tiny, path)
        partitions = partition_offsets(path, 16)
        assert len(partitions) == 16
        parallel = read_trace_file_parallel(path, num_workers=16)
        assert len(parallel.records) == 3

    def test_invalid_partition_count(self, trace_file):
        with pytest.raises(ValueError):
            partition_offsets(trace_file, 0)


class TestPartitionEdgeCases:
    """Empty traces, single-block traces and more workers than blocks must
    yield well-formed (possibly empty) partitions without caller guards."""

    def _check_tiling(self, partitions, num_partitions, total):
        assert len(partitions) == num_partitions
        assert partitions[0].start == 0
        assert partitions[-1].end == total
        for previous, current in zip(partitions, partitions[1:]):
            assert previous.end == current.start
        for part in partitions:
            assert part.start <= part.end

    def test_empty_file_yields_all_empty_partitions(self, tmp_path):
        path = str(tmp_path / "empty.trace")
        open(path, "w").close()
        for workers in (1, 3, 8):
            partitions = partition_offsets(path, workers)
            self._check_tiling(partitions, workers, 0)

    def test_preamble_only_text_trace(self, tmp_path):
        """A trace with globals but zero records: the record partitions are
        empty and the parallel reader returns an empty record list."""
        trace = Trace(module_name="hollow",
                      globals=[GlobalSymbol("g", 0x1000, 8, 64, False)])
        path = str(tmp_path / "hollow.trace")
        write_trace_file(trace, path)
        partitions = partition_offsets(path, 4)
        self._check_tiling(partitions, 4, os.path.getsize(path))
        parallel = read_trace_file_parallel(path, num_workers=4)
        assert parallel.records == []
        assert parallel.globals == trace.globals

    def test_single_block_text_trace(self, tmp_path, example_trace):
        single = Trace(module_name="single",
                       globals=list(example_trace.globals),
                       records=example_trace.records[:1])
        path = str(tmp_path / "single.trace")
        write_trace_file(single, path)
        partitions = partition_offsets(path, 8)
        self._check_tiling(partitions, 8, os.path.getsize(path))
        parallel = read_trace_file_parallel(path, num_workers=8)
        assert parallel.records == single.records

    def test_binary_zero_record_trace(self, tmp_path):
        trace = Trace(module_name="hollow",
                      globals=[GlobalSymbol("g", 0x1000, 8, 64, False)])
        path = str(tmp_path / "hollow.btrace")
        write_trace_file_binary(trace, path)
        partitions = partition_offsets_binary(path, 4)
        assert len(partitions) == 4
        assert all(part.size == 0 for part in partitions)
        parallel = read_trace_file_parallel(path, num_workers=4)
        assert parallel.records == []
        assert parallel.globals == trace.globals

    def test_binary_more_partitions_than_blocks(self, tmp_path,
                                                example_trace):
        path = str(tmp_path / "few.btrace")
        write_trace_file_binary(
            Trace(module_name="few", globals=list(example_trace.globals),
                  records=example_trace.records[:5]), path)
        partitions = partition_offsets_binary(path, 16)
        assert len(partitions) == 16
        for previous, current in zip(partitions, partitions[1:]):
            assert previous.end == current.start
        parallel = read_trace_file_parallel(path, num_workers=16)
        assert parallel.records == example_trace.records[:5]


class TestPartitionRecords:
    """Record-index partitioning (the parallel fused engine's unit)."""

    @pytest.mark.parametrize("record_count,num_partitions", [
        (0, 1), (0, 4), (1, 4), (3, 8), (100, 7), (256, 4),
    ])
    def test_ranges_tile_in_order(self, record_count, num_partitions):
        ranges = partition_records(record_count, num_partitions)
        assert len(ranges) == num_partitions
        assert ranges[0].start == 0
        assert ranges[-1].end == record_count
        for previous, current in zip(ranges, ranges[1:]):
            assert previous.end == current.start
        assert sum(r.count for r in ranges) == record_count
        sizes = [r.count for r in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_records(10, 0)
        with pytest.raises(ValueError):
            partition_records(-1, 2)


class TestParallelRead:
    def test_parallel_equals_serial_full_record_equality(self, trace_file):
        serial = read_trace_file(trace_file)
        parallel = read_trace_file_parallel(trace_file, num_workers=4)
        assert serial.records == parallel.records
        assert serial.globals == parallel.globals
        assert serial.module_name == parallel.module_name

    def test_parallel_operand_fidelity(self, trace_file):
        serial = read_trace_file(trace_file)
        parallel = read_trace_file_parallel(trace_file, num_workers=3)
        for s_record, p_record in zip(serial.records, parallel.records):
            assert s_record.operands == p_record.operands
            assert s_record.result == p_record.result

    def test_single_worker_path(self, trace_file):
        single = read_trace_file_parallel(trace_file, num_workers=1)
        serial = read_trace_file(trace_file)
        assert single.records == serial.records

    def test_analysis_identical_on_serial_and_parallel_read(self, trace_file,
                                                            example_spec):
        from repro.core import AutoCheck, AutoCheckConfig

        serial_report = AutoCheck(AutoCheckConfig(main_loop=example_spec),
                                  trace_path=trace_file).run()
        parallel_report = AutoCheck(
            AutoCheckConfig(main_loop=example_spec, parallel_preprocessing=True,
                            preprocessing_workers=4),
            trace_path=trace_file).run()
        assert serial_report.dependency_string() == parallel_report.dependency_string()


def _non_ascii_record(dyn_id, name, function):
    return TraceRecord(
        dyn_id=dyn_id,
        opcode=int(Opcode.LOAD),
        opcode_name=Opcode.LOAD.mnemonic,
        function=function,
        line=5 + dyn_id % 7,
        column=2,
        bb_label=1,
        bb_id="5:1",
        operands=[TraceOperand(index="1", bits=64, value=float(dyn_id),
                               is_register=False, name=name,
                               address=0x1000 + 8 * dyn_id)],
        result=TraceOperand(index="r", bits=64, value=float(dyn_id),
                            is_register=True, name=str(dyn_id), address=None),
    )


class TestNonAsciiPartitioning:
    """Regression: byte/character confusion in the partitioned reader.

    The old implementation computed byte offsets from ``os.path.getsize``
    but seeked/read through *text-mode* handles, so any multi-byte character
    shifted every later partition boundary and records were silently dropped
    or duplicated.  These traces use multi-byte identifiers throughout, so
    they fail loudly on any regression.
    """

    #: identifiers whose UTF-8 encoding is 2-4 bytes per character
    NAMES = ["péché", "λ_var", "变量", "übergröße", "Δt", "ψ"]

    @pytest.fixture(scope="class")
    def non_ascii_trace(self):
        records = [
            _non_ascii_record(i + 1, self.NAMES[i % len(self.NAMES)],
                              function="计算" if i % 3 else "mäin")
            for i in range(400)
        ]
        return Trace(module_name="ünïcode",
                     globals=[GlobalSymbol("σ_global", 0x1000, 64, 64, True)],
                     records=records)

    @pytest.fixture(scope="class")
    def non_ascii_trace_file(self, non_ascii_trace, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("traces") / "unicode.trace")
        write_trace_file(non_ascii_trace, path)
        return path

    def test_partitions_are_byte_aligned_to_blocks(self, non_ascii_trace_file):
        partitions = partition_offsets(non_ascii_trace_file, 6)
        assert partitions[-1].end == os.path.getsize(non_ascii_trace_file)
        with open(non_ascii_trace_file, "rb") as handle:
            data = handle.read()
        for part in partitions[1:]:
            if part.start < len(data):
                assert data[part.start:part.start + 2] == b"0,"

    @pytest.mark.parametrize("workers", [2, 3, 5, 8])
    def test_parallel_read_equals_serial(self, non_ascii_trace_file,
                                         non_ascii_trace, workers):
        serial = read_trace_file(non_ascii_trace_file)
        parallel = read_trace_file_parallel(non_ascii_trace_file,
                                            num_workers=workers)
        assert serial.records == non_ascii_trace.records
        assert parallel.records == serial.records
        assert parallel.globals == serial.globals
        assert parallel.module_name == "ünïcode"

    def test_crlf_line_endings_do_not_shift_partitions(self, non_ascii_trace,
                                                       tmp_path):
        # Re-encode the trace with \r\n line endings (as a Windows tool
        # might) and check the byte-offset partitioner still aligns.
        path = str(tmp_path / "crlf.trace")
        write_trace_file(non_ascii_trace, path)
        with open(path, "rb") as handle:
            data = handle.read()
        crlf_path = str(tmp_path / "crlf2.trace")
        with open(crlf_path, "wb") as handle:
            handle.write(data.replace(b"\n", b"\r\n"))
        serial = read_trace_file(crlf_path)
        parallel = read_trace_file_parallel(crlf_path, num_workers=4)
        assert serial.records == non_ascii_trace.records
        assert parallel.records == serial.records
