"""Unit tests for the tracing interpreter (execution + trace emission)."""

import pytest

from repro.codegen import compile_source
from repro.ir.opcodes import Opcode
from repro.tracer import (
    FaultInjector,
    Interpreter,
    InterpreterError,
    SimulatedFailure,
    compile_and_run,
    run_and_trace,
)


SMALL_PROGRAM = """\
double scale;

double triple(double v) {
    return v * 3.0;
}

int main() {
    scale = 2.0;
    double data[4];
    for (int i = 0; i < 4; ++i) {
        data[i] = i * scale;
    }
    double total = 0.0;
    for (int i = 0; i < 4; ++i) {
        total = total + triple(data[i]);
    }
    print("total", total);
    return 0;
}
"""


@pytest.fixture(scope="module")
def small_trace():
    trace, result = run_and_trace(SMALL_PROGRAM, module_name="small")
    assert not result.failed
    return trace, result


class TestExecutionBasics:
    def test_program_output(self, small_trace):
        _, result = small_trace
        assert result.output == ["total 36"]

    def test_untraced_run_matches_traced_output(self, small_trace):
        _, traced = small_trace
        untraced = compile_and_run(SMALL_PROGRAM)
        assert untraced.output == traced.output

    def test_steps_counted(self, small_trace):
        trace, result = small_trace
        assert result.steps == len(trace.records)

    def test_memory_attached_to_result(self, small_trace):
        _, result = small_trace
        assert result.memory is not None
        assert result.memory.total_global_bytes >= 8

    def test_missing_entry_function(self):
        module = compile_source("int main() { return 0; }")
        interpreter = Interpreter(module)
        with pytest.raises(InterpreterError):
            interpreter.run(entry="does_not_exist")

    def test_max_steps_guard(self):
        source = "int main() { while (1) { int x = 1; } return 0; }"
        module = compile_source(source)
        interpreter = Interpreter(module, max_steps=500)
        with pytest.raises(InterpreterError, match="budget"):
            interpreter.run()

    def test_division_by_zero_reported_with_line(self):
        source = "int main() {\n int z = 0;\n int y = 4 / z;\n return 0;\n}"
        with pytest.raises(InterpreterError, match="line 3"):
            compile_and_run(source)

    def test_determinism_across_runs(self):
        first = compile_and_run(SMALL_PROGRAM, seed=9)
        second = compile_and_run(SMALL_PROGRAM, seed=9)
        assert first.output == second.output


class TestTraceEmission:
    def test_globals_preamble_present(self, small_trace):
        trace, _ = small_trace
        names = [symbol.name for symbol in trace.globals]
        assert names == ["scale"]
        assert trace.globals[0].size_bytes == 8

    def test_dynamic_ids_strictly_increasing(self, small_trace):
        trace, _ = small_trace
        ids = [record.dyn_id for record in trace.records]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_functions_seen_in_trace(self, small_trace):
        trace, _ = small_trace
        assert set(trace.functions()) == {"main", "triple"}

    def test_load_records_carry_variable_name_and_address(self, small_trace):
        trace, _ = small_trace
        loads = [r for r in trace.records if r.is_load]
        named = [r for r in loads if r.memory_operand().name == "scale"]
        assert named
        operand = named[0].memory_operand()
        assert operand.address == trace.globals[0].address
        assert not operand.is_register
        assert named[0].result.is_register

    def test_store_records_have_value_and_pointer_operands(self, small_trace):
        trace, _ = small_trace
        stores = [r for r in trace.records if r.is_store]
        assert stores
        for record in stores:
            assert len(record.operands) == 2
            assert record.operands[1].address is not None

    def test_alloca_records_have_count_and_address(self, small_trace):
        trace, _ = small_trace
        allocas = [r for r in trace.records if r.is_alloca]
        data_allocas = [r for r in allocas if r.result.name == "data"]
        assert data_allocas
        count_operand = data_allocas[0].operands[0]
        assert count_operand.name == "count" and count_operand.value == 4

    def test_gep_records_reference_base_symbol(self, small_trace):
        trace, _ = small_trace
        geps = [r for r in trace.records if r.is_gep]
        assert geps
        assert any(r.memory_operand().name == "data" for r in geps)

    def test_call_record_for_user_function_lists_parameters(self, small_trace):
        trace, _ = small_trace
        calls = [r for r in trace.records
                 if r.is_call and r.callee == "triple"]
        assert calls
        params = calls[0].parameter_operands()
        assert [p.name for p in params] == ["v"]

    def test_print_call_record_present(self, small_trace):
        trace, _ = small_trace
        assert any(r.is_call and r.callee == "print" for r in trace.records)

    def test_arithmetic_records_have_register_result(self, small_trace):
        trace, _ = small_trace
        arith = [r for r in trace.records if r.is_arithmetic]
        assert arith
        for record in arith[:20]:
            assert record.result is not None
            assert record.result.is_register

    def test_branch_records_have_line_numbers(self, small_trace):
        trace, _ = small_trace
        branches = [r for r in trace.records if r.opcode == int(Opcode.BR)]
        assert branches
        assert all(r.line > 0 for r in branches)

    def test_parameter_access_reported_under_callee_name(self, small_trace):
        """Inside triple(), loads of the parameter show the name `v` (the
        paper's Fig. 1 behaviour) while the address belongs to the caller's
        frame value."""
        trace, _ = small_trace
        loads_in_triple = [r for r in trace.records
                           if r.is_load and r.function == "triple"]
        assert any(r.memory_operand().name == "v" for r in loads_in_triple)

    def test_no_sink_means_no_records_but_same_result(self):
        module = compile_source(SMALL_PROGRAM)
        interpreter = Interpreter(module, trace_sink=None)
        result = interpreter.run()
        assert result.output == ["total 36"]


class TestHooksAndFaults:
    def test_block_hook_invoked_per_entry(self):
        module = compile_source(
            "int main() { int s = 0; for (int i = 0; i < 5; ++i) { s = s + i; } "
            "print(s); return 0; }")
        interpreter = Interpreter(module)
        seen = []
        # Find the loop body block via the loop analysis.
        from repro.analysis import find_loops

        info = find_loops(module.function("main"))
        header = info.loops[0].header.name
        interpreter.register_block_hook("main", header,
                                        lambda ctx: seen.append(ctx.entry_count))
        interpreter.run()
        # for i in 0..4: header evaluated 6 times (5 iterations + exit check)
        assert seen == [1, 2, 3, 4, 5, 6]
        assert interpreter.block_entry_count("main", header) == 6

    def test_fault_injection_aborts_run(self):
        module = compile_source(
            "int main() { int s = 0; for (int i = 0; i < 8; ++i) { s = s + i; "
            "print(s); } return 0; }")
        from repro.analysis import find_loops

        info = find_loops(module.function("main"))
        body = info.loops[0].header.terminator.targets[0].name
        interpreter = Interpreter(module)
        interpreter.register_block_hook(
            "main", body, FaultInjector(function="main", block=body, fail_at_entry=3))
        result = interpreter.run()
        assert result.failed
        assert isinstance(result.failure, SimulatedFailure)
        assert len(result.output) == 2  # only the first two iterations printed

    def test_resolve_variable_finds_globals(self, small_trace):
        module = compile_source(SMALL_PROGRAM)
        interpreter = Interpreter(module)
        interpreter.run()
        allocation = interpreter.resolve_variable("scale")
        assert allocation is not None
        assert allocation.segment == "global"
