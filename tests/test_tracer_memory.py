"""Unit tests for the memory model and runtime values."""

import pytest

from repro.tracer.memory import GLOBAL_BASE, Memory, MemoryError_, STACK_BASE
from repro.tracer.values import PointerValue, as_number


class TestPointerValue:
    def test_offset_by_elements(self):
        ptr = PointerValue(address=1000, symbol="u", element_bits=64)
        moved = ptr.offset_by(3, 64)
        assert moved.address == 1024
        assert moved.symbol == "u"

    def test_with_symbol_preserves_address(self):
        ptr = PointerValue(address=2000, symbol="a", element_bits=32)
        renamed = ptr.with_symbol("p")
        assert renamed.address == 2000
        assert renamed.symbol == "p"

    def test_as_number_of_pointer_is_address(self):
        ptr = PointerValue(address=0xABC, symbol="x")
        assert as_number(ptr) == 0xABC

    def test_as_number_of_scalar(self):
        assert as_number(3.5) == 3.5
        assert as_number(7) == 7


class TestMemoryAllocation:
    def test_global_allocations_are_contiguous_and_aligned(self):
        memory = Memory()
        first = memory.allocate_global("a", 32, 3, True)     # 12 -> 16 bytes
        second = memory.allocate_global("b", 64, 1, False)
        assert first.address == GLOBAL_BASE
        assert first.size_bytes == 16
        assert second.address == first.address + 16

    def test_stack_allocations_above_stack_base(self):
        memory = Memory()
        alloc = memory.allocate_stack("x", 32, 1, False, "main")
        assert alloc.address >= STACK_BASE
        assert alloc.segment == "stack"
        assert alloc.function == "main"

    def test_stack_mark_and_release_reuses_addresses(self):
        memory = Memory()
        mark = memory.stack_mark()
        first = memory.allocate_stack("tmp", 64, 4, True, "callee")
        memory.stack_release(mark)
        second = memory.allocate_stack("other", 64, 4, True, "callee2")
        assert second.address == first.address

    def test_stack_release_upwards_rejected(self):
        memory = Memory()
        mark = memory.stack_mark()
        with pytest.raises(MemoryError_):
            memory.stack_release(mark + 64)

    def test_peak_stack_tracks_high_water_mark(self):
        memory = Memory()
        mark = memory.stack_mark()
        memory.allocate_stack("big", 64, 100, True, "f")
        peak_after_alloc = memory.peak_stack_bytes
        memory.stack_release(mark)
        assert memory.peak_stack_bytes == peak_after_alloc
        assert peak_after_alloc >= 800

    def test_allocation_metadata(self):
        memory = Memory()
        alloc = memory.allocate_global("u", 64, 10, True)
        assert alloc.element_bytes == 8
        assert alloc.end_address == alloc.address + alloc.size_bytes
        assert alloc.contains(alloc.address)
        assert alloc.contains(alloc.end_address - 1)
        assert not alloc.contains(alloc.end_address)
        assert len(alloc.element_addresses()) == 10


class TestLoadsAndStores:
    def test_default_value_for_untouched_address(self):
        memory = Memory()
        assert memory.load(12345) == 0
        assert memory.load(12345, default=0.0) == 0.0

    def test_store_then_load(self):
        memory = Memory()
        memory.store(500, 2.75)
        assert memory.load(500) == 2.75

    def test_read_write_block_roundtrip(self):
        memory = Memory()
        alloc = memory.allocate_global("v", 64, 4, True)
        memory.write_block(alloc, [1.0, 2.0, 3.0, 4.0])
        assert memory.read_block(alloc) == [1.0, 2.0, 3.0, 4.0]

    def test_write_block_size_mismatch(self):
        memory = Memory()
        alloc = memory.allocate_global("v", 64, 4, True)
        with pytest.raises(MemoryError_):
            memory.write_block(alloc, [1.0, 2.0])

    def test_find_allocation_by_address(self):
        memory = Memory()
        alloc = memory.allocate_global("v", 64, 4, True)
        inside = alloc.address + 8
        assert memory.find_allocation(inside) is alloc
        assert memory.find_allocation(alloc.end_address + 4096) is None

    def test_statistics(self):
        memory = Memory()
        memory.allocate_global("a", 64, 10, True)
        memory.allocate_stack("b", 32, 2, True, "main")
        assert memory.total_global_bytes == 80
        assert memory.peak_stack_bytes == 8
        assert memory.process_image_bytes == 88
