"""Unit tests for the runtime builtins and output formatting."""

import math

import pytest

from repro.tracer.runtime import Runtime, RuntimeError_, format_print_output
from repro.util.rng import DeterministicRNG


class TestBuiltins:
    def test_sqrt(self):
        assert Runtime().call("sqrt", [9.0]) == pytest.approx(3.0)

    def test_sqrt_negative_rejected(self):
        with pytest.raises(RuntimeError_):
            Runtime().call("sqrt", [-1.0])

    def test_pow(self):
        assert Runtime().call("pow", [2.0, 10.0]) == pytest.approx(1024.0)

    def test_log_and_exp(self):
        runtime = Runtime()
        assert runtime.call("log", [math.e]) == pytest.approx(1.0)
        assert runtime.call("exp", [0.0]) == pytest.approx(1.0)

    def test_log_non_positive_rejected(self):
        with pytest.raises(RuntimeError_):
            Runtime().call("log", [0.0])

    def test_trig(self):
        runtime = Runtime()
        assert runtime.call("sin", [0.0]) == pytest.approx(0.0)
        assert runtime.call("cos", [0.0]) == pytest.approx(1.0)

    def test_fabs_floor_fmin_fmax_abs(self):
        runtime = Runtime()
        assert runtime.call("fabs", [-2.5]) == 2.5
        assert runtime.call("floor", [2.9]) == 2
        assert runtime.call("fmin", [1.0, 2.0]) == 1.0
        assert runtime.call("fmax", [1.0, 2.0]) == 2.0
        assert runtime.call("abs", [-7]) == 7

    def test_unknown_builtin(self):
        with pytest.raises(RuntimeError_):
            Runtime().call("frobnicate", [])

    def test_known(self):
        runtime = Runtime()
        assert runtime.known("sqrt")
        assert not runtime.known("nope")


class TestDeterminism:
    def test_rand_sequence_reproducible_across_instances(self):
        a = Runtime(seed=42)
        b = Runtime(seed=42)
        seq_a = [a.call("rand", []) for _ in range(10)]
        seq_b = [b.call("rand", []) for _ in range(10)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a = Runtime(seed=1)
        b = Runtime(seed=2)
        assert [a.call("rand", []) for _ in range(5)] != \
               [b.call("rand", []) for _ in range(5)]

    def test_randf_in_unit_interval(self):
        runtime = Runtime()
        for _ in range(100):
            value = runtime.call("randf", [])
            assert 0.0 <= value < 1.0

    def test_clock_monotonic(self):
        runtime = Runtime()
        values = [runtime.call("clock", []) for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_rng_fork_independent(self):
        rng = DeterministicRNG(7)
        fork = rng.fork(1)
        assert rng.next_uint() != fork.next_uint()

    def test_rng_bounds(self):
        rng = DeterministicRNG(3)
        for _ in range(50):
            assert 0 <= rng.next_int(10) < 10
        with pytest.raises(ValueError):
            rng.next_int(0)


class TestPrintFormatting:
    def test_labels_interleaved(self):
        assert format_print_output(["x", None], [1, 2.0]) == "x 1 2"

    def test_trailing_label(self):
        assert format_print_output([None, "done"], [5]) == "5 done"

    def test_float_formatting_stable(self):
        text = format_print_output([None], [1.0 / 3.0])
        assert text == f"{1.0/3.0:.10g}"

    def test_no_values(self):
        assert format_print_output(["hello"], []) == "hello"
