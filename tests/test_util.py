"""Unit tests for the utility helpers."""

import time

import pytest

from repro.util import (
    DeterministicRNG,
    Stopwatch,
    Timer,
    TimingBreakdown,
    format_bytes,
    format_seconds,
    get_logger,
    render_table,
)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        watch.start()
        time.sleep(0.01)
        second = watch.stop()
        assert second > first > 0

    def test_stopwatch_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_stopwatch_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0

    def test_timer_context_manager(self):
        with Timer() as timer:
            time.sleep(0.005)
        assert timer.elapsed >= 0.004

    def test_breakdown_stages_and_total(self):
        breakdown = TimingBreakdown()
        with breakdown.stage("a"):
            time.sleep(0.002)
        breakdown.add("b", 0.5)
        breakdown.add("b", 0.25)
        assert breakdown.get("b") == pytest.approx(0.75)
        assert breakdown.get("missing") == 0.0
        assert breakdown.total == pytest.approx(breakdown.get("a") + 0.75)
        assert breakdown.as_dict()["total"] == pytest.approx(breakdown.total)

    def test_breakdown_merge(self):
        first = TimingBreakdown({"x": 1.0})
        second = TimingBreakdown({"x": 2.0, "y": 3.0})
        merged = first.merge(second)
        assert merged.get("x") == 3.0
        assert merged.get("y") == 3.0
        assert first.get("x") == 1.0  # originals untouched

    def test_breakdown_record_counts_and_rate(self):
        breakdown = TimingBreakdown()
        breakdown.add("walk", 2.0)
        breakdown.add_count("walk", 500)
        breakdown.add_count("walk", 500)
        assert breakdown.get_count("walk") == 1000
        assert breakdown.get_count("missing") == 0
        assert breakdown.records_per_second("walk") == pytest.approx(500.0)
        # stages without a count (or without elapsed time) have no rate
        breakdown.add("untimed", 1.0)
        assert breakdown.records_per_second("untimed") is None
        breakdown.add_count("zero", 100)
        assert breakdown.records_per_second("zero") is None

    def test_breakdown_merge_includes_counts(self):
        first = TimingBreakdown({"x": 1.0}, {"x": 10})
        second = TimingBreakdown({"x": 1.0}, {"x": 30})
        merged = first.merge(second)
        assert merged.get_count("x") == 40
        assert first.get_count("x") == 10  # originals untouched


class TestRNG:
    def test_reproducibility(self):
        assert [DeterministicRNG(5).next_uint() for _ in range(3)] == \
               [DeterministicRNG(5).next_uint() for _ in range(3)]

    def test_reseed(self):
        rng = DeterministicRNG(5)
        first = [rng.next_uint() for _ in range(3)]
        rng.reseed(5)
        assert [rng.next_uint() for _ in range(3)] == first

    def test_next_double_range(self):
        rng = DeterministicRNG(11)
        values = [rng.next_double() for _ in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 150


class TestFormatting:
    @pytest.mark.parametrize("value,expected", [
        (0, "0.00 B"),
        (512, "512.00 B"),
        (2048, "2.00 KB"),
        (5 * 1024 * 1024, "5.00 MB"),
        (3 * 1024 ** 3, "3.00 GB"),
    ])
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    def test_format_seconds_ranges(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(0.05).endswith("ms")
        assert format_seconds(3.2).endswith(" s")
        assert format_seconds(400).endswith("min")

    def test_render_table_alignment(self):
        table = render_table(("name", "value"), [("a", 1), ("long-name", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all same width
        assert "long-name" in table

    def test_logger_namespacing(self):
        logger = get_logger("core.test")
        assert logger.name == "repro.core.test"
        direct = get_logger("repro.other")
        assert direct.name == "repro.other"
